package experiments

import (
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/tablefmt"
)

// E1Row is one point of the Theorem-18 tradeoff grid.
type E1Row struct {
	FName  string
	N      int
	Groups int
	K      int
	// WriterEntryRMR is the worst per-passage writer entry cost;
	// Theorem 18 predicts Theta(f(n)) (plus O(log m) for the mutex).
	WriterEntryRMR int
	// ReaderPassRMR is the worst per-passage reader cost (entry+cs+exit);
	// predicted Theta(log(n/f(n))).
	ReaderPassRMR int
	// ReaderExitRMR isolates the exit section, the quantity the
	// lower-bound tradeoff speaks about.
	ReaderExitRMR int
	// PredWriter and PredReader are the paper's predicted shapes
	// (f(n)+log2 m and log2 K + 1).
	PredWriter, PredReader float64
}

// E1Tradeoff measures the A_f tradeoff across parameterizations and reader
// counts under low-contention scheduling (which isolates the algorithmic
// RMR cost the theorem bounds). Grid cells run in parallel (gridRows).
func E1Tradeoff(ns []int, protocol sim.Protocol) ([]E1Row, *tablefmt.Table, error) {
	rows, err := gridRows(AFFactories(), ns, nSquaredCost, func(fac Factory, n int) (E1Row, error) {
		rep := spec.Run(fac.New(), spec.Scenario{
			NReaders: n, NWriters: 1,
			ReaderPassages: 2, WriterPassages: 2,
			Protocol:  protocol,
			Scheduler: sched.NewSticky(),
			MaxSteps:  20_000_000,
		})
		if !rep.OK() {
			return E1Row{}, &RunError{Exp: "E1", Alg: fac.Name, N: n, Detail: rep.Failures()}
		}
		props := fac.New().Props()
		return E1Row{
			FName:          fac.F.Name,
			N:              n,
			Groups:         fac.F.Groups(n),
			K:              fac.F.GroupSize(n),
			WriterEntryRMR: rep.MaxWriterPassage.EntryRMR,
			ReaderPassRMR:  rep.MaxReaderPassage.RMR(),
			ReaderExitRMR:  rep.MaxReaderPassage.ExitRMR,
			PredWriter:     props.PredictedWriterRMR(n, 1),
			PredReader:     props.PredictedReaderRMR(n, 1),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, e1Table(rows), nil
}

func e1Table(rows []E1Row) *tablefmt.Table {
	t := tablefmt.New("f", "n", "groups", "K",
		"writer entry RMR", "pred ~f+log m", "reader RMR", "reader exit RMR", "pred ~log K")
	last := ""
	for i, r := range rows {
		if last != "" && r.FName != last {
			t.AddRule()
		}
		_ = i
		last = r.FName
		t.AddRow("af-"+r.FName, tablefmt.Itoa(r.N), tablefmt.Itoa(r.Groups), tablefmt.Itoa(r.K),
			tablefmt.Itoa(r.WriterEntryRMR), tablefmt.F1(r.PredWriter),
			tablefmt.Itoa(r.ReaderPassRMR), tablefmt.Itoa(r.ReaderExitRMR), tablefmt.F1(r.PredReader))
	}
	return t
}

// RunError reports a failed experiment execution.
type RunError struct {
	Exp, Alg string
	N        int
	Detail   string
}

func (e *RunError) Error() string {
	return e.Exp + ": " + e.Alg + " n=" + tablefmt.Itoa(e.N) + ": " + e.Detail
}
