package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/recoverable"
	"repro/internal/spec"
	"repro/internal/tablefmt"
)

// E14 characterizes the crash-recovery model (DESIGN.md "Crash-recovery
// model"): every crash is followed by a restart whose recovery section
// repairs shared state, so — unlike E13, where liveness is only
// characterized — zero hangs and 100% passage completion are pass/fail
// requirements across the whole sweep. The table aggregates, per
// (algorithm, victim class, crash section): how many points landed there,
// how many executions stayed safe and live, the recovery-verdict mix, and
// the worst recovery-section RMR cost.

// E14Row aggregates the sweep outcomes for one (algorithm, victim class,
// crash section) cell.
type E14Row struct {
	Alg string
	// Victim is "reader" or "writer".
	Victim string
	// Section names the section the (first) crash landed in. SecRecover
	// rows come from double-crash configurations that killed the recovery
	// itself.
	Section string
	// Points is the number of crash points falling in that section;
	// Crashes counts applied crashes across those executions (> Points for
	// double-crash configurations), Restarts the admitted incarnations.
	Points, Crashes, Restarts int
	// OK counts executions that were safe AND live (zero ME violations,
	// every process completed its passage quota).
	OK int
	// Aborts, ResumedCS, Completions count the recovery verdicts: rolled
	// back to the remainder section, resumed an interrupted CS, completed
	// an interrupted exit.
	Aborts, ResumedCS, Completions int
	// MEViol counts Mutual Exclusion violations (must be zero).
	MEViol int
	// Budget counts step-budget hits (must be zero) and Hangs watchdog
	// verdicts (must be zero: recovery restores liveness).
	Budget, Hangs int
	// MaxRecoveryRMR is the worst recovery-section RMR total observed.
	MaxRecoveryRMR int
}

// e14Algs returns the recoverable algorithms under test with their sweep
// mode: the centralized lock is small enough for the exhaustive sweep,
// the A_f members run the sampled sweep.
func e14Algs() []struct {
	Factory
	exhaustive bool
} {
	mk := func(name string, f func() memmodel.RecoverableAlgorithm, ex bool) struct {
		Factory
		exhaustive bool
	} {
		return struct {
			Factory
			exhaustive bool
		}{Factory{Name: name, New: func() memmodel.Algorithm { return f() }}, ex}
	}
	return []struct {
		Factory
		exhaustive bool
	}{
		mk("r-centralized", func() memmodel.RecoverableAlgorithm { return recoverable.NewCentralized() }, true),
		mk("r-af-log", func() memmodel.RecoverableAlgorithm { return recoverable.NewAF(core.FLog) }, false),
		mk("r-af-1", func() memmodel.RecoverableAlgorithm { return recoverable.NewAF(core.FOne) }, false),
	}
}

// E14RecoverySweep runs the crash-recovery characterization on a
// 2-reader/2-writer, 2-passage workload: exhaustive single-crash plus
// double-crash (re-crashed recovery) sweeps on the recoverable centralized
// lock, sampled sweeps on the recoverable A_f members. It errors if any
// execution violates ME, hangs, hits the step budget, or leaves a passage
// quota unmet — and if no configuration crashed a recovery section.
func E14RecoverySweep() ([]E14Row, *tablefmt.Table, error) {
	sc := spec.Scenario{NReaders: 2, NWriters: 2, ReaderPassages: 2, WriterPassages: 2, CSReads: 1}
	victims := []struct {
		name string
		id   int
	}{
		{"reader", 0},
		{"writer", sc.NReaders},
	}

	var rows []E14Row
	recoveryCrashed := false
	for _, alg := range e14Algs() {
		newRec := func() memmodel.RecoverableAlgorithm {
			return alg.New().(memmodel.RecoverableAlgorithm)
		}
		for _, v := range victims {
			var outs []*spec.RecoverOutcome
			var err error
			if alg.exhaustive {
				outs, err = spec.RecoverySweep(newRec, sc, v.id, 0, nil)
				if err == nil {
					var recrash []*spec.RecoverOutcome
					recrash, err = spec.RecoverySweepRecrash(newRec, sc, v.id, 3, []int{1, 2, 3}, nil)
					outs = append(outs, recrash...)
				}
			} else {
				outs, err = spec.RecoverySweepSampled(newRec, sc, []int{v.id}, []int64{1, 2, 3}, 8, 1, nil)
			}
			if err != nil {
				return nil, nil, fmt.Errorf("E14 %s victim %s: %w", alg.Name, v.name, err)
			}
			sectionRows, crashedRecovery, err := e14Aggregate(alg.Name, v.name, outs)
			if err != nil {
				return nil, nil, err
			}
			recoveryCrashed = recoveryCrashed || crashedRecovery
			rows = append(rows, sectionRows...)
		}
	}
	if !recoveryCrashed {
		return nil, nil, fmt.Errorf("E14: no configuration crashed a recovery section")
	}
	return rows, e14Table(rows), nil
}

// e14Aggregate folds a sweep's outcomes into per-crash-section rows and
// enforces the pass/fail axes.
func e14Aggregate(alg, victim string, outs []*spec.RecoverOutcome) ([]E14Row, bool, error) {
	order := []memmodel.Section{
		memmodel.SecRemainder, memmodel.SecEntry, memmodel.SecCS,
		memmodel.SecExit, memmodel.SecRecover,
	}
	bySection := map[memmodel.Section]*E14Row{}
	for _, s := range order {
		bySection[s] = &E14Row{Alg: alg, Victim: victim, Section: s.String()}
	}
	crashedRecovery := false
	for _, o := range outs {
		if o.Err != nil {
			return nil, false, fmt.Errorf("E14 %s victim %s %v: %w", alg, victim, o.Points, o.Err)
		}
		if o.Crashes == 0 {
			continue // moot point: the victim finished first
		}
		// Attribute the execution to the section of its *last* applied
		// crash, so double-crash runs that kill the recovery land in the
		// SecRecover row.
		section := memmodel.SecRemainder
		for _, e := range o.Events {
			if e.Crashed {
				section = e.CrashSection
			}
		}
		crashedRecovery = crashedRecovery || o.CrashedInRecovery()
		row := bySection[section]
		row.Points++
		row.Crashes += o.Crashes
		row.Restarts += o.Restarts
		row.MEViol += len(o.MEViolations)
		if o.BudgetExceeded {
			row.Budget++
		}
		if o.Hung {
			row.Hangs++
		}
		if o.OK() {
			row.OK++
		}
		for _, rec := range o.Recoveries {
			switch rec {
			case memmodel.RecoverAbort:
				row.Aborts++
			case memmodel.RecoverCS:
				row.ResumedCS++
			case memmodel.RecoverDone:
				row.Completions++
			}
		}
		row.MaxRecoveryRMR = max(row.MaxRecoveryRMR, o.RecoveryRMR)
	}
	var rows []E14Row
	for _, s := range order {
		r := bySection[s]
		if r.Points == 0 {
			continue
		}
		if r.OK != r.Points || r.MEViol != 0 || r.Budget != 0 || r.Hangs != 0 {
			return nil, false, fmt.Errorf(
				"E14 %s victim %s section %s: %d/%d ok, %d ME violations, %d budget hits, %d hangs",
				alg, victim, r.Section, r.OK, r.Points, r.MEViol, r.Budget, r.Hangs)
		}
		rows = append(rows, *r)
	}
	return rows, crashedRecovery, nil
}

func e14Table(rows []E14Row) *tablefmt.Table {
	t := tablefmt.New("algorithm", "victim", "crash section", "points", "crashes", "restarts",
		"ok", "aborts", "resumed cs", "completions", "max recovery rmr")
	for _, r := range rows {
		t.AddRow(r.Alg, r.Victim, r.Section, tablefmt.Itoa(r.Points), tablefmt.Itoa(r.Crashes),
			tablefmt.Itoa(r.Restarts), tablefmt.Itoa(r.OK), tablefmt.Itoa(r.Aborts),
			tablefmt.Itoa(r.ResumedCS), tablefmt.Itoa(r.Completions), tablefmt.Itoa(r.MaxRecoveryRMR))
	}
	return t
}
