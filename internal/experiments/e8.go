package experiments

import (
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/tablefmt"
)

// E8Row contrasts one algorithm's per-passage RMR costs under the CC
// (write-through) model and under DSM. The paper's Section 6 cites the
// Danek-Hadzilacos Omega(n) DSM lower bound and notes it does not apply to
// CC; this experiment makes the model gap concrete:
//
//   - flag-array allocates each reader's flag at that reader, so its
//     reader side is fully local under DSM (the DSM-appropriate design).
//   - A_f (and the writers' tournament mutex) spin on globally-homed
//     variables: optimal in CC, but remote under DSM, so reader costs
//     that were Theta(log(n/f)) RMRs in CC become larger in DSM.
type E8Row struct {
	Alg string
	N   int
	// CCReader/CCWriter: worst per-passage RMRs under write-through.
	CCReader, CCWriter int
	// DSMReader/DSMWriter: the same workload under DSM.
	DSMReader, DSMWriter int
}

// E8ModelContrast measures the same low-contention workload under both
// models for A_f (af-log) and the flag-array baseline.
func E8ModelContrast(ns []int) ([]E8Row, *tablefmt.Table, error) {
	facs := []Factory{}
	for _, fac := range AFFactories() {
		if fac.Name == "af-log" || fac.Name == "af-n" {
			facs = append(facs, fac)
		}
	}
	for _, fac := range BaselineFactories() {
		if fac.Name == "flag-array" {
			facs = append(facs, fac)
		}
	}

	measure := func(fac Factory, n int, protocol sim.Protocol) (reader, writer int, err error) {
		rep := spec.Run(fac.New(), spec.Scenario{
			NReaders: n, NWriters: 1,
			ReaderPassages: 2, WriterPassages: 2,
			Protocol:  protocol,
			Scheduler: sched.NewSticky(),
			MaxSteps:  20_000_000,
		})
		if !rep.OK() {
			return 0, 0, &RunError{Exp: "E8", Alg: fac.Name, N: n, Detail: rep.Failures()}
		}
		return rep.MaxReaderPassage.RMR(), rep.MaxWriterPassage.RMR(), nil
	}

	rows, err := gridRows(facs, ns, nSquaredCost, func(fac Factory, n int) (E8Row, error) {
		ccR, ccW, err := measure(fac, n, sim.WriteThrough)
		if err != nil {
			return E8Row{}, err
		}
		dsmR, dsmW, err := measure(fac, n, sim.DSM)
		if err != nil {
			return E8Row{}, err
		}
		return E8Row{
			Alg: fac.Name, N: n,
			CCReader: ccR, CCWriter: ccW,
			DSMReader: dsmR, DSMWriter: dsmW,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, e8Table(rows), nil
}

func e8Table(rows []E8Row) *tablefmt.Table {
	t := tablefmt.New("algorithm", "n",
		"reader RMR (CC)", "reader RMR (DSM)", "writer RMR (CC)", "writer RMR (DSM)")
	last := ""
	for _, r := range rows {
		if last != "" && r.Alg != last {
			t.AddRule()
		}
		last = r.Alg
		t.AddRow(r.Alg, tablefmt.Itoa(r.N),
			tablefmt.Itoa(r.CCReader), tablefmt.Itoa(r.DSMReader),
			tablefmt.Itoa(r.CCWriter), tablefmt.Itoa(r.DSMWriter))
	}
	return t
}
