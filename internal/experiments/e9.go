package experiments

import (
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/tablefmt"
)

// E9Row is one point of the counter ablation: the same A_f
// parameterization with the paper's f-array group counters versus two
// ablated counters. The f-array's O(log K)-add / O(1)-read split is the
// ingredient that realizes Theorem 18 on both sides at once:
//
//   - CounterCASWord (O(1) uncontended add on one word) re-introduces
//     invalidation storms and CAS retries: contended reader cost grows
//     with concurrency instead of log K.
//   - CounterCellArray (O(1) add, O(K) scan read) keeps readers cheap but
//     shifts the cost to every counter *read*: the writer's group scans
//     become Theta(n) regardless of f, collapsing the tradeoff to its
//     f=n endpoint.
type E9Row struct {
	FName string
	Kind  string
	N     int
	// ReaderMean/ReaderMax are per-passage reader RMRs under a contended
	// round-robin schedule with no writer (reader-side cost).
	ReaderMean float64
	ReaderMax  int
	// WriterEntryRMR is the solo writer entry cost (readers quiescent).
	WriterEntryRMR int
}

var e9Kinds = []struct {
	name string
	kind core.CounterKind
}{
	{"f-array", core.CounterFArray},
	{"cas-word", core.CounterCASWord},
	{"cell-array", core.CounterCellArray},
}

// E9CounterAblation measures reader and writer costs for all three counter
// kinds.
func E9CounterAblation(ns []int) ([]E9Row, *tablefmt.Table, error) {
	var rows []E9Row
	for _, f := range []core.F{core.FOne, core.FLog} {
		for _, k := range e9Kinds {
			for _, n := range ns {
				// Reader-side: all readers in lockstep (worst case for a
				// shared word), no writer.
				rep := spec.Run(core.NewWithCounter(f, k.kind), spec.Scenario{
					NReaders: n, NWriters: 1,
					ReaderPassages: 3, WriterPassages: 0,
					Protocol:  sim.WriteThrough,
					Scheduler: sched.NewRoundRobin(),
					MaxSteps:  50_000_000,
				})
				if !rep.OK() {
					return nil, nil, &RunError{Exp: "E9", Alg: "af-" + f.Name + "/" + k.name, N: n, Detail: rep.Failures()}
				}
				var all []float64
				for _, acct := range rep.ReaderAccounts {
					for _, pass := range acct.Passages {
						all = append(all, float64(pass.RMR()))
					}
				}
				// Writer-side: solo entry over quiescent readers.
				wrep := spec.Run(core.NewWithCounter(f, k.kind), spec.Scenario{
					NReaders: n, NWriters: 1,
					ReaderPassages: 0, WriterPassages: 1,
					Protocol:  sim.WriteThrough,
					Scheduler: sched.LowestFirst{},
					MaxSteps:  50_000_000,
				})
				if !wrep.OK() {
					return nil, nil, &RunError{Exp: "E9w", Alg: "af-" + f.Name + "/" + k.name, N: n, Detail: wrep.Failures()}
				}
				rows = append(rows, E9Row{
					FName: f.Name, Kind: k.name, N: n,
					ReaderMean:     stats.Summarize(all).Mean,
					ReaderMax:      rep.MaxReaderPassage.RMR(),
					WriterEntryRMR: wrep.MaxWriterPassage.EntryRMR,
				})
			}
		}
	}
	return rows, e9Table(rows), nil
}

func e9Table(rows []E9Row) *tablefmt.Table {
	t := tablefmt.New("f", "counter", "n",
		"reader RMR mean", "reader RMR max", "writer entry RMR")
	last := ""
	for _, r := range rows {
		key := r.FName + "/" + r.Kind
		if last != "" && key != last {
			t.AddRule()
		}
		last = key
		t.AddRow("af-"+r.FName, r.Kind, tablefmt.Itoa(r.N),
			tablefmt.F1(r.ReaderMean), tablefmt.Itoa(r.ReaderMax),
			tablefmt.Itoa(r.WriterEntryRMR))
	}
	return t
}
