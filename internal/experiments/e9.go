package experiments

import (
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/tablefmt"
)

// E9Row is one point of the counter ablation: the same A_f
// parameterization with the paper's f-array group counters versus two
// ablated counters. The f-array's O(log K)-add / O(1)-read split is the
// ingredient that realizes Theorem 18 on both sides at once:
//
//   - CounterCASWord (O(1) uncontended add on one word) re-introduces
//     invalidation storms and CAS retries: contended reader cost grows
//     with concurrency instead of log K.
//   - CounterCellArray (O(1) add, O(K) scan read) keeps readers cheap but
//     shifts the cost to every counter *read*: the writer's group scans
//     become Theta(n) regardless of f, collapsing the tradeoff to its
//     f=n endpoint.
type E9Row struct {
	FName string
	Kind  string
	N     int
	// ReaderMean/ReaderMax are per-passage reader RMRs under a contended
	// round-robin schedule with no writer (reader-side cost).
	ReaderMean float64
	ReaderMax  int
	// WriterEntryRMR is the solo writer entry cost (readers quiescent).
	WriterEntryRMR int
}

var e9Kinds = []struct {
	name string
	kind core.CounterKind
}{
	{"f-array", core.CounterFArray},
	{"cas-word", core.CounterCASWord},
	{"cell-array", core.CounterCellArray},
}

// E9CounterAblation measures reader and writer costs for all three counter
// kinds.
func E9CounterAblation(ns []int) ([]E9Row, *tablefmt.Table, error) {
	// Flatten the outer (f, counter kind) pair so the whole three-level
	// grid rides one gridRows fan-out, keeping row-major order.
	type cell struct {
		f    core.F
		name string
		kind core.CounterKind
	}
	var cells []cell
	for _, f := range []core.F{core.FOne, core.FLog} {
		for _, k := range e9Kinds {
			cells = append(cells, cell{f: f, name: k.name, kind: k.kind})
		}
	}
	rows, err := gridRows(cells, ns, nSquaredCost, func(c cell, n int) (E9Row, error) {
		// Reader-side: all readers in lockstep (worst case for a
		// shared word), no writer.
		rep := spec.Run(core.NewWithCounter(c.f, c.kind), spec.Scenario{
			NReaders: n, NWriters: 1,
			ReaderPassages: 3, WriterPassages: 0,
			Protocol:  sim.WriteThrough,
			Scheduler: sched.NewRoundRobin(),
			MaxSteps:  50_000_000,
		})
		if !rep.OK() {
			return E9Row{}, &RunError{Exp: "E9", Alg: "af-" + c.f.Name + "/" + c.name, N: n, Detail: rep.Failures()}
		}
		var all []float64
		for _, acct := range rep.ReaderAccounts {
			for _, pass := range acct.Passages {
				all = append(all, float64(pass.RMR()))
			}
		}
		// Writer-side: solo entry over quiescent readers.
		wrep := spec.Run(core.NewWithCounter(c.f, c.kind), spec.Scenario{
			NReaders: n, NWriters: 1,
			ReaderPassages: 0, WriterPassages: 1,
			Protocol:  sim.WriteThrough,
			Scheduler: sched.LowestFirst{},
			MaxSteps:  50_000_000,
		})
		if !wrep.OK() {
			return E9Row{}, &RunError{Exp: "E9w", Alg: "af-" + c.f.Name + "/" + c.name, N: n, Detail: wrep.Failures()}
		}
		return E9Row{
			FName: c.f.Name, Kind: c.name, N: n,
			ReaderMean:     stats.Summarize(all).Mean,
			ReaderMax:      rep.MaxReaderPassage.RMR(),
			WriterEntryRMR: wrep.MaxWriterPassage.EntryRMR,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, e9Table(rows), nil
}

func e9Table(rows []E9Row) *tablefmt.Table {
	t := tablefmt.New("f", "counter", "n",
		"reader RMR mean", "reader RMR max", "writer entry RMR")
	last := ""
	for _, r := range rows {
		key := r.FName + "/" + r.Kind
		if last != "" && key != last {
			t.AddRule()
		}
		last = key
		t.AddRow("af-"+r.FName, r.Kind, tablefmt.Itoa(r.N),
			tablefmt.F1(r.ReaderMean), tablefmt.Itoa(r.ReaderMax),
			tablefmt.Itoa(r.WriterEntryRMR))
	}
	return t
}
