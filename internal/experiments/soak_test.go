package experiments

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestSoakLargeN pushes the tradeoff grid to n = 2048 (skipped with
// -short): the Theta shapes must persist at scale, and the simulator must
// stay within its step budget. This is the closest analogue of the paper's
// asymptotic statements that a finite run can provide.
func TestSoakLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rows, _, err := E1Tradeoff([]int{512, 2048}, sim.WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	get := func(f string, n int) E1Row {
		for _, r := range rows {
			if r.FName == f && r.N == n {
				return r
			}
		}
		t.Fatalf("row %s/%d missing", f, n)
		return E1Row{}
	}

	// af-1 at n=2048: writer constant, reader exit = log2(2048)+1 = 12.
	r := get("1", 2048)
	if r.WriterEntryRMR != 6 {
		t.Errorf("af-1 writer entry = %d, want 6 (independent of n)", r.WriterEntryRMR)
	}
	if r.ReaderExitRMR != 12 {
		t.Errorf("af-1 reader exit = %d, want 12 = log2(2048)+1", r.ReaderExitRMR)
	}

	// af-n at n=2048: writer = 3n+3 exactly, reader constant.
	r = get("n", 2048)
	if r.WriterEntryRMR != 3*2048+3 {
		t.Errorf("af-n writer entry = %d, want %d", r.WriterEntryRMR, 3*2048+3)
	}
	if r.ReaderPassRMR != 4 {
		t.Errorf("af-n reader passage = %d, want 4", r.ReaderPassRMR)
	}

	// af-log at both scales: reader exit tracks ceil(log2 K)+1 exactly
	// (the f-array rounds K up to a power of two).
	for _, n := range []int{512, 2048} {
		r := get("log", n)
		wantExit := int(math.Ceil(math.Log2(float64(r.K)))) + 1
		if r.ReaderExitRMR != wantExit {
			t.Errorf("af-log n=%d: reader exit = %d, want %d (ceil(log2 K=%d)+1)",
				n, r.ReaderExitRMR, wantExit, r.K)
		}
	}
}

// TestSoakLowerBoundLargeN runs the Theorem-5 adversary at n = 729 = 3^6
// (skipped with -short): r must reach at least log3(n) for af-1.
func TestSoakLowerBoundLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rows, _, err := E2LowerBound([]int{729}, sim.WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Alg == "af-1" {
			if r.R < 6 {
				t.Errorf("af-1 n=729: r = %d, want >= log3(729) = 6", r.R)
			}
			if r.WriterAware != 729 || r.Lemma1Violations != 0 {
				t.Errorf("af-1 n=729: aware=%d lemma1=%d", r.WriterAware, r.Lemma1Violations)
			}
		}
	}
}
