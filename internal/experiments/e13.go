package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/memmodel"
	"repro/internal/spec"
	"repro/internal/tablefmt"
)

// E13 characterizes robustness under the crash-stop model (DESIGN.md
// "Fault model"): E13CrashSweep exhaustively kills one reader and one
// writer at every step boundary of a small workload and aggregates, per
// crash section, whether the survivors stayed live or hung — with Mutual
// Exclusion required to hold in every case. E13AbortCost measures the RMR
// price of a guaranteed-failing try-entry attempt (abortable entry) as the
// population grows.

// E13CrashRow aggregates the sweep outcomes for one (algorithm, victim
// class, crash section) cell.
type E13CrashRow struct {
	Alg string
	// Victim is "reader" or "writer".
	Victim string
	// Section names the section the victim occupied when it crashed.
	Section string
	// Points is the number of crash points falling in that section.
	Points int
	// Live counts points after which every survivor completed its
	// passages; Hangs counts points the watchdog flagged as wedged.
	Live, Hangs int
	// MEViol counts Mutual Exclusion violations (must be zero).
	MEViol int
	// Budget counts runs that hit the step budget instead of a
	// deterministic verdict (must be zero: every hang is watchdog-caught).
	Budget int
}

// e13CrashAlgs returns the sweep population: every A_f tradeoff point plus
// the contrasting baselines (the queue/Courtois locks are omitted — their
// long lock-passing chains make the tiny sweep scenario dominated by the
// substrate mutex rather than the RW protocol under study).
func e13CrashAlgs() []Factory {
	out := AFFactories()
	out = append(out,
		Factory{Name: "centralized", New: func() memmodel.Algorithm { return baseline.NewCentralized() }},
		Factory{Name: "flag-array", New: func() memmodel.Algorithm { return baseline.NewFlagArray() }},
		Factory{Name: "faa-phasefair", New: func() memmodel.Algorithm { return baseline.NewPhaseFair() }},
		Factory{Name: "mutex-rw", New: func() memmodel.Algorithm { return baseline.NewMutexRW() }},
	)
	return out
}

// E13CrashSweep runs the exhaustive crash sweep for every algorithm and
// both victim classes on a 2-reader/2-writer, 2-passage round-robin
// workload. The outer (algorithm, victim) loop stays serial: each
// spec.CrashSweep already fans its crash points across the full worker
// pool, so parallelizing the grid too would only oversubscribe it.
func E13CrashSweep() ([]E13CrashRow, *tablefmt.Table, error) {
	// CSReads gives the critical section a real shared-memory step, so the
	// sweep has crash points attributable to the CS (with an empty CS the
	// entry->exit section transitions happen within one step boundary).
	sc := spec.Scenario{NReaders: 2, NWriters: 2, ReaderPassages: 2, WriterPassages: 2, CSReads: 1}
	victims := []struct {
		name string
		id   int
	}{
		{"reader", 0},
		{"writer", sc.NReaders},
	}
	var rows []E13CrashRow
	for _, fac := range e13CrashAlgs() {
		for _, v := range victims {
			outs, err := spec.CrashSweep(fac.New, sc, v.id, nil)
			if err != nil {
				return nil, nil, fmt.Errorf("E13 %s victim %s: %w", fac.Name, v.name, err)
			}
			bySection := map[memmodel.Section]*E13CrashRow{}
			order := []memmodel.Section{memmodel.SecRemainder, memmodel.SecEntry, memmodel.SecCS, memmodel.SecExit}
			for _, s := range order {
				bySection[s] = &E13CrashRow{Alg: fac.Name, Victim: v.name, Section: s.String()}
			}
			for _, o := range outs {
				row := bySection[o.CrashSection]
				row.Points++
				row.MEViol += len(o.MEViolations)
				if o.Hung {
					row.Hangs++
				}
				if o.BudgetExceeded {
					row.Budget++
				}
				if o.Live() {
					row.Live++
				}
				if o.Err != nil {
					return nil, nil, fmt.Errorf("E13 %s victim %s %s: %w", fac.Name, v.name, o.Point, o.Err)
				}
			}
			for _, s := range order {
				if bySection[s].Points > 0 {
					rows = append(rows, *bySection[s])
				}
			}
		}
	}
	return rows, e13CrashTable(rows), nil
}

func e13CrashTable(rows []E13CrashRow) *tablefmt.Table {
	t := tablefmt.New("algorithm", "victim", "crash section", "points", "live", "hangs", "me viol", "budget hit")
	for _, r := range rows {
		t.AddRow(r.Alg, r.Victim, r.Section, tablefmt.Itoa(r.Points), tablefmt.Itoa(r.Live),
			tablefmt.Itoa(r.Hangs), tablefmt.Itoa(r.MEViol), tablefmt.Itoa(r.Budget))
	}
	return t
}

// E13AbortRow is the measured abort cost for one algorithm and population.
type E13AbortRow struct {
	Alg string
	N   int
	// ReaderRMR / WriterRMR are the RMR costs of one guaranteed-failing
	// try attempt (opposing class parked in the CS).
	ReaderRMR, WriterRMR int
	// Aborted confirms both staged attempts failed as designed.
	Aborted bool
}

// e13TryAlgs returns the abortable-entry implementations under test.
func e13TryAlgs() []Factory {
	out := AFFactories()
	out = append(out, Factory{Name: "centralized", New: func() memmodel.Algorithm { return baseline.NewCentralized() }})
	return out
}

// E13AbortCost measures failed-attempt RMR costs across populations ns.
// The expected shapes follow Theorem 18's entry bounds: a reader abort
// costs O(log(n/f(n))) (constant at f(n)=n), a writer abort O(f(n))
// (constant at f(n)=1), and the centralized lock is constant on both
// sides.
func E13AbortCost(ns []int) ([]E13AbortRow, *tablefmt.Table, error) {
	rows, err := gridRows(e13TryAlgs(), ns, nSquaredCost, func(fac Factory, n int) (E13AbortRow, error) {
		c, err := spec.MeasureAbortCost(fac.New, n)
		if err != nil {
			return E13AbortRow{}, fmt.Errorf("E13 abort %s n=%d: %w", fac.Name, n, err)
		}
		return E13AbortRow{
			Alg: fac.Name, N: n,
			ReaderRMR: c.ReaderAttemptRMR,
			WriterRMR: c.WriterAttemptRMR,
			Aborted:   c.ReaderAborted && c.WriterAborted,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, e13AbortTable(rows), nil
}

func e13AbortTable(rows []E13AbortRow) *tablefmt.Table {
	t := tablefmt.New("algorithm", "n", "reader abort rmr", "writer abort rmr", "aborted")
	for _, r := range rows {
		ab := "yes"
		if !r.Aborted {
			ab = "NO"
		}
		t.AddRow(r.Alg, tablefmt.Itoa(r.N), tablefmt.Itoa(r.ReaderRMR), tablefmt.Itoa(r.WriterRMR), ab)
	}
	return t
}
