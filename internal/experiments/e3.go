package experiments

import (
	"fmt"
	"math"

	"repro/internal/lowerbound"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/tablefmt"
)

// E3NRow is one point of the Corollary-6 check: for every read/write/CAS
// algorithm, max(writer entry RMR, reader exit RMR) under the adversary is
// Omega(log n).
type E3NRow struct {
	Alg string
	N   int
	// MaxSide is max(writer-entry RMR, worst reader-exit RMR) in the
	// adversarial execution.
	MaxSide int
	// Log2N is the reference log2(n).
	Log2N float64
}

// E3MRow is one point of the Omega(log m) writers-only bound: with readers
// quiescent, a writer passage still pays the m-process mutex cost.
type E3MRow struct {
	Alg string
	M   int
	// WriterPassRMR is the worst per-passage writer RMR (entry + exit).
	WriterPassRMR int
	// Log2M is the reference log2(m).
	Log2M float64
}

// E3MaxBound evaluates Corollary 6: sweep n with a single writer, run the
// Theorem-5 adversary, and report the larger of the two sides. FAA-based
// algorithms are excluded: the corollary's hypothesis (read/write/CAS
// operations only) does not cover them, and indeed faa-phasefair beats the
// bound — E2's table shows it.
func E3MaxBound(ns []int) ([]E3NRow, *tablefmt.Table, error) {
	rows, err := gridRows(AFFactories(), ns, nSquaredCost, func(fac Factory, n int) (E3NRow, error) {
		res, err := lowerbound.Run(fac.New(), n, lowerbound.Config{})
		if err != nil {
			return E3NRow{}, fmt.Errorf("E3 %s n=%d: %w", fac.Name, n, err)
		}
		return E3NRow{
			Alg:     fac.Name,
			N:       n,
			MaxSide: max(res.WriterEntryRMR, res.MaxReaderExitRMR),
			Log2N:   math.Log2(float64(n)),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, e3nTable(rows), nil
}

func e3nTable(rows []E3NRow) *tablefmt.Table {
	t := tablefmt.New("algorithm", "n", "max(writer entry, reader exit) RMR", "log2 n")
	last := ""
	for _, r := range rows {
		if last != "" && r.Alg != last {
			t.AddRule()
		}
		last = r.Alg
		t.AddRow(r.Alg, tablefmt.Itoa(r.N), tablefmt.Itoa(r.MaxSide), tablefmt.F1(r.Log2N))
	}
	return t
}

// E3WriterMutex evaluates the Omega(log m) side of Corollary 7: writers
// alone reduce to mutual exclusion, so per-passage writer RMRs grow with
// log m (our WL is a Peterson tournament, Theta(log m) even solo).
func E3WriterMutex(ms []int) ([]E3MRow, *tablefmt.Table, error) {
	// af-1 and af-log suffice: WL dominates.
	rows, err := gridRows(AFFactories()[:2], ms, nSquaredCost, func(fac Factory, m int) (E3MRow, error) {
		rep := spec.Run(fac.New(), spec.Scenario{
			NReaders: 1, NWriters: m,
			ReaderPassages: 0, WriterPassages: 2,
			Scheduler: sched.NewSticky(),
			Protocol:  sim.WriteThrough,
			MaxSteps:  20_000_000,
		})
		if !rep.OK() {
			return E3MRow{}, &RunError{Exp: "E3m", Alg: fac.Name, N: m, Detail: rep.Failures()}
		}
		return E3MRow{
			Alg:           fac.Name,
			M:             m,
			WriterPassRMR: rep.MaxWriterPassage.RMR(),
			Log2M:         math.Log2(float64(max(m, 2))),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, e3mTable(rows), nil
}

func e3mTable(rows []E3MRow) *tablefmt.Table {
	t := tablefmt.New("algorithm", "m", "writer passage RMR", "log2 m")
	last := ""
	for _, r := range rows {
		if last != "" && r.Alg != last {
			t.AddRule()
		}
		last = r.Alg
		t.AddRow(r.Alg, tablefmt.Itoa(r.M), tablefmt.Itoa(r.WriterPassRMR), tablefmt.F1(r.Log2M))
	}
	return t
}
