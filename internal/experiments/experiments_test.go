package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

func TestFactoriesProduceFreshInstances(t *testing.T) {
	for _, fac := range AllFactories() {
		a, b := fac.New(), fac.New()
		if a == b {
			t.Errorf("%s: factory returned the same instance twice", fac.Name)
		}
		if a.Name() != fac.Name {
			t.Errorf("factory %q produced algorithm %q", fac.Name, a.Name())
		}
	}
	if len(AFFactories()) != 5 || len(BaselineFactories()) != 8 {
		t.Errorf("factory counts: %d AF, %d baseline", len(AFFactories()), len(BaselineFactories()))
	}
}

func TestE1TradeoffShapes(t *testing.T) {
	ns := []int{8, 32, 128}
	rows, table, err := E1Tradeoff(ns, sim.WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*len(ns) {
		t.Fatalf("rows = %d", len(rows))
	}
	if table.NumRows() != len(rows) {
		t.Error("table row count mismatch")
	}

	byF := map[string][]E1Row{}
	for _, r := range rows {
		byF[r.FName] = append(byF[r.FName], r)
	}
	// af-n: writer grows linearly in n; readers constant.
	lin := byF["n"]
	if g := stats.GrowthRatio([]float64{float64(lin[0].WriterEntryRMR), float64(lin[2].WriterEntryRMR)}); g < 8 {
		t.Errorf("af-n writer growth over 16x n = %.1fx, want >= 8x (linear)", g)
	}
	if lin[2].ReaderPassRMR > lin[0].ReaderPassRMR {
		t.Errorf("af-n reader RMR grew with n: %d -> %d", lin[0].ReaderPassRMR, lin[2].ReaderPassRMR)
	}
	// af-1: reader grows like log n (strictly between n=8 and n=128);
	// writer entry stays bounded by a constant.
	one := byF["1"]
	if one[2].ReaderPassRMR <= one[0].ReaderPassRMR {
		t.Errorf("af-1 reader RMR did not grow: %d -> %d", one[0].ReaderPassRMR, one[2].ReaderPassRMR)
	}
	if ratio := float64(one[2].ReaderPassRMR) / float64(one[0].ReaderPassRMR); ratio > 4 {
		t.Errorf("af-1 reader growth %.1fx over 16x n — superlogarithmic?", ratio)
	}
	if one[2].WriterEntryRMR > one[0].WriterEntryRMR+8 {
		t.Errorf("af-1 writer entry grew with n: %d -> %d", one[0].WriterEntryRMR, one[2].WriterEntryRMR)
	}
}

func TestE2LowerBoundTable(t *testing.T) {
	rows, table, err := E2LowerBound([]int{9, 27}, sim.WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || table.NumRows() != len(rows) {
		t.Fatal("bad E2 output")
	}
	sawFAABlowup := false
	for _, r := range rows {
		if r.Lemma1Violations != 0 {
			t.Errorf("%s n=%d: Lemma 1 violations", r.Alg, r.N)
		}
		if r.WriterAware != r.N {
			t.Errorf("%s n=%d: writer aware %d", r.Alg, r.N, r.WriterAware)
		}
		if r.Alg == "faa-phasefair" {
			// Lemma 2's 3x bound holds only for read/write/CAS steps: a
			// batch of CASes on one variable has a single non-trivial
			// winner, while every FAA succeeds and keeps extending the
			// familiarity set. The FAA baseline therefore consolidates
			// awareness of ~n readers in one round — the mechanism that
			// lets Bhatt-Jayanti-style locks beat the tradeoff.
			if r.MaxGrowth > 3 {
				sawFAABlowup = true
			}
			continue
		}
		if r.MaxGrowth > 3.0+1e-9 {
			t.Errorf("%s n=%d: growth %.2f > 3 (Lemma 2)", r.Alg, r.N, r.MaxGrowth)
		}
	}
	if !sawFAABlowup {
		t.Error("expected the FAA baseline to exceed Lemma 2's 3x growth bound")
	}
}

func TestE3Tables(t *testing.T) {
	nRows, nTable, err := E3MaxBound([]int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range nRows {
		// Corollary 6: at least one side must be >= ~log2(n) (allow a
		// 0.5x constant).
		if float64(r.MaxSide) < 0.5*r.Log2N {
			t.Errorf("%s n=%d: max side %d below log2(n)/2 = %.1f", r.Alg, r.N, r.MaxSide, r.Log2N/2)
		}
	}
	if nTable.NumRows() != len(nRows) {
		t.Error("table mismatch")
	}

	mRows, mTable, err := E3WriterMutex([]int{1, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if mTable.NumRows() != len(mRows) {
		t.Error("table mismatch")
	}
	// Writer passage RMR must grow with m but sublinearly (log m).
	byAlg := map[string][]E3MRow{}
	for _, r := range mRows {
		byAlg[r.Alg] = append(byAlg[r.Alg], r)
	}
	for alg, rs := range byAlg {
		first, last := rs[0], rs[len(rs)-1]
		if last.WriterPassRMR <= first.WriterPassRMR {
			t.Errorf("%s: writer RMR flat across m sweep: %d -> %d", alg, first.WriterPassRMR, last.WriterPassRMR)
		}
		if last.WriterPassRMR > first.WriterPassRMR+40 {
			t.Errorf("%s: writer RMR growth looks superlogarithmic: %d -> %d over 64x m",
				alg, first.WriterPassRMR, last.WriterPassRMR)
		}
	}
}

func TestE4BaselinesComparison(t *testing.T) {
	rows, table, err := E4Baselines(8, 2, []int64{1, 2}, sim.WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != len(rows) {
		t.Error("table mismatch")
	}
	get := func(alg, mix string) E4Row {
		for _, r := range rows {
			if r.Alg == alg && r.Mix == mix {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", alg, mix)
		return E4Row{}
	}
	// The structural comparisons from Section 6: flag-array's writer pays
	// at least ~n while faa-phasefair's writer is constant-ish.
	fa := get("flag-array", "balanced")
	pf := get("faa-phasefair", "balanced")
	if fa.MeanWriterRMR < float64(8) {
		t.Errorf("flag-array writer RMR %.1f < n", fa.MeanWriterRMR)
	}
	if pf.MeanWriterRMR > fa.MeanWriterRMR {
		t.Errorf("faa writer %.1f not cheaper than flag-array %.1f", pf.MeanWriterRMR, fa.MeanWriterRMR)
	}
	// mutex-rw's readers pay like writers (no reader parallelism).
	mx := get("mutex-rw", "read-heavy")
	af := get("af-log", "read-heavy")
	if mx.MeanReaderRMR < af.MeanReaderRMR/4 {
		t.Errorf("mutex-rw readers suspiciously cheap: %.1f vs af-log %.1f", mx.MeanReaderRMR, af.MeanReaderRMR)
	}
}

func TestE5ProtocolsPairing(t *testing.T) {
	rows, table, err := E5Protocols([]int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != len(rows) {
		t.Error("table mismatch")
	}
	for _, r := range rows {
		// Same asymptotic shape: write-back within 3x of write-through
		// on both axes (and both positive).
		if r.WBWriter == 0 || r.WTWriter == 0 {
			t.Errorf("af-%s n=%d: zero writer cost", r.FName, r.N)
		}
		ratio := float64(r.WBWriter) / float64(r.WTWriter)
		if ratio > 3 || ratio < 1.0/3 {
			t.Errorf("af-%s n=%d: WB/WT writer ratio %.2f out of range", r.FName, r.N, ratio)
		}
	}
}

func TestE6PropertyMatrix(t *testing.T) {
	rows, table, err := E6Properties([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != len(rows) {
		t.Error("table mismatch")
	}
	for _, r := range rows {
		if !r.MutualExclusion || !r.Progress || !r.BoundedExit {
			t.Errorf("%s: properties failed: %+v", r.Alg, r)
		}
		if r.ReaderOverlap != r.ExpectOverlap {
			t.Errorf("%s: overlap = %v, expected %v", r.Alg, r.ReaderOverlap, r.ExpectOverlap)
		}
	}
	rendered := table.String()
	if !strings.Contains(rendered, "af-log") || !strings.Contains(rendered, "mutex-rw") {
		t.Error("table missing algorithms")
	}
}

func TestE8ModelContrast(t *testing.T) {
	rows, table, err := E8ModelContrast([]int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != len(rows) {
		t.Error("table mismatch")
	}
	get := func(alg string, n int) E8Row {
		for _, r := range rows {
			if r.Alg == alg && r.N == n {
				return r
			}
		}
		t.Fatalf("row %s/%d missing", alg, n)
		return E8Row{}
	}
	// flag-array readers become fully local under DSM (flags homed at
	// their readers): cheaper than under CC and independent of n.
	fa8, fa64 := get("flag-array", 8), get("flag-array", 64)
	if fa8.DSMReader > fa8.CCReader || fa64.DSMReader != fa8.DSMReader {
		t.Errorf("flag-array DSM readers: %+v / %+v", fa8, fa64)
	}
	// A_f spins on globally-homed variables: DSM strictly dearer than CC
	// on both axes.
	af := get("af-log", 64)
	if af.DSMReader <= af.CCReader {
		t.Errorf("af-log DSM reader %d not dearer than CC %d", af.DSMReader, af.CCReader)
	}
	if af.DSMWriter <= af.CCWriter {
		t.Errorf("af-log DSM writer %d not dearer than CC %d", af.DSMWriter, af.CCWriter)
	}
}

func TestE9CounterAblation(t *testing.T) {
	rows, table, err := E9CounterAblation([]int{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != len(rows) {
		t.Error("table mismatch")
	}
	get := func(f, kind string, n int) E9Row {
		for _, r := range rows {
			if r.FName == f && r.Kind == kind && r.N == n {
				return r
			}
		}
		t.Fatalf("row %s/%s/%d missing", f, kind, n)
		return E9Row{}
	}
	// CAS-word crossover: with a single group of contended readers (af-1),
	// the naive CAS word is competitive at n=4 but loses badly to the
	// f-array at n=64 — the tree caps worst-case reader cost at O(log K)
	// while the shared word degrades with concurrency.
	faSmall, faLarge := get("1", "f-array", 4), get("1", "f-array", 64)
	cwSmall, cwLarge := get("1", "cas-word", 4), get("1", "cas-word", 64)
	if cwLarge.ReaderMean <= faLarge.ReaderMean {
		t.Errorf("n=64: CAS word (%.1f) should be dearer than f-array (%.1f)",
			cwLarge.ReaderMean, faLarge.ReaderMean)
	}
	cwGrowth := cwLarge.ReaderMean / cwSmall.ReaderMean
	faGrowth := faLarge.ReaderMean / faSmall.ReaderMean
	if cwGrowth <= faGrowth {
		t.Errorf("CAS word growth %.1fx not worse than f-array growth %.1fx", cwGrowth, faGrowth)
	}
	// Cell-array: readers stay cheap (O(1) adds) but the writer's counter
	// scans make its entry Theta(n) even at f=1, collapsing the tradeoff.
	caLarge := get("1", "cell-array", 64)
	if caLarge.WriterEntryRMR < 64 {
		t.Errorf("cell-array writer entry RMR = %d, want >= n (scan cost)", caLarge.WriterEntryRMR)
	}
	if faLarge.WriterEntryRMR >= caLarge.WriterEntryRMR {
		t.Errorf("f-array writer (%d) should beat cell-array writer (%d) at f=1",
			faLarge.WriterEntryRMR, caLarge.WriterEntryRMR)
	}
	if caLarge.ReaderMax > faLarge.ReaderMax {
		t.Errorf("cell-array readers (%d) should not exceed f-array readers (%d)",
			caLarge.ReaderMax, faLarge.ReaderMax)
	}
}

func TestE10MutexSubstrates(t *testing.T) {
	rows, table, err := E10MutexSubstrates([]int{1, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != len(rows) {
		t.Error("table mismatch")
	}
	get := func(mutex string, m int) E10Row {
		for _, r := range rows {
			if r.Mutex == mutex && r.M == m {
				return r
			}
		}
		t.Fatalf("row %s/%d missing", mutex, m)
		return E10Row{}
	}
	// Tournament: solo cost grows logarithmically with m.
	t1, t64 := get("tournament", 1), get("tournament", 64)
	if t64.SoloRMR <= t1.SoloRMR {
		t.Errorf("tournament solo RMR flat: %d -> %d", t1.SoloRMR, t64.SoloRMR)
	}
	if t64.SoloRMR > t1.SoloRMR+30 {
		t.Errorf("tournament solo growth superlogarithmic: %d -> %d", t1.SoloRMR, t64.SoloRMR)
	}
	// CLH and ticket: solo cost independent of m.
	for _, name := range []string{"clh", "ticket"} {
		s1, s64 := get(name, 1), get(name, 64)
		if s64.SoloRMR != s1.SoloRMR {
			t.Errorf("%s solo RMR not constant: %d -> %d", name, s1.SoloRMR, s64.SoloRMR)
		}
	}
	// Under contention at m=64, the ticket lock's wake-all spinning makes
	// its worst passage dearer than the tournament's.
	if get("ticket", 64).ContendedMaxRMR <= get("tournament", 64).ContendedMaxRMR {
		t.Errorf("ticket contended max (%d) should exceed tournament's (%d)",
			get("ticket", 64).ContendedMaxRMR, get("tournament", 64).ContendedMaxRMR)
	}
}

// TestAFMutexAblationCorrect: both alternative substrates keep A_f correct.
func TestAFMutexAblationCorrect(t *testing.T) {
	for _, kind := range []core.MutexKind{core.MutexCLH, core.MutexTicket} {
		for _, seed := range []int64{1, 2, 3} {
			alg := core.New(core.FLog, core.WithWriterMutex(kind))
			rep := spec.Run(alg, spec.Scenario{
				NReaders: 5, NWriters: 3,
				ReaderPassages: 3, WriterPassages: 3,
				Scheduler: sched.NewRandom(seed),
				CSReads:   2,
			})
			if !rep.OK() {
				t.Errorf("%s seed=%d:\n%s", alg.Name(), seed, rep.Failures())
			}
		}
	}
	if got := core.New(core.FLog, core.WithWriterMutex(core.MutexCLH)).Name(); got != "af-log+clhwl" {
		t.Errorf("Name = %q", got)
	}
	if !core.New(core.FOne, core.WithWriterMutex(core.MutexTicket)).Props().UsesFAA {
		t.Error("ticket WL must declare FAA")
	}
}

func TestE11AdversaryValue(t *testing.T) {
	rows, table, err := E11AdversaryValue([]int{27, 81}, []int64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != len(rows) {
		t.Error("table mismatch")
	}
	get := func(alg string, n int) E11Row {
		for _, r := range rows {
			if r.Alg == alg && r.N == n {
				return r
			}
		}
		t.Fatalf("row %s/%d missing", alg, n)
		return E11Row{}
	}
	// A_f's reader exit cost is schedule-robust (Theta(log K) no matter
	// what): adversary and random worst cases agree within 2x.
	for _, alg := range []string{"af-1", "af-log"} {
		r := get(alg, 81)
		lo, hi := r.RandomExitRMR/2, r.RandomExitRMR*2
		if r.AdversaryExitRMR < lo || r.AdversaryExitRMR > hi {
			t.Errorf("%s n=81: adversary %d vs random %d — expected same order",
				alg, r.AdversaryExitRMR, r.RandomExitRMR)
		}
	}
	// The centralized lock's Theta(n) worst case hides in rare schedules:
	// the awareness-guided adversary finds it deterministically while a
	// handful of random seeds badly underestimates it.
	r := get("centralized", 81)
	if r.AdversaryExitRMR != 81 {
		t.Errorf("centralized n=81: adversary extracted %d, want n=81", r.AdversaryExitRMR)
	}
	if r.AdversaryExitRMR < 2*r.RandomExitRMR {
		t.Errorf("centralized n=81: adversary %d not >> random %d",
			r.AdversaryExitRMR, r.RandomExitRMR)
	}
}

func TestE12ShapeFits(t *testing.T) {
	rows, table, err := E12ShapeFits([]int{8, 32, 128, 512}, sim.WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	if table.NumRows() != len(rows) {
		t.Error("table mismatch")
	}
	get := func(f string) E12Row {
		for _, r := range rows {
			if r.FName == f {
				return r
			}
		}
		t.Fatalf("row %s missing", f)
		return E12Row{}
	}
	// af-1: reader cost is 4 RMRs per counter level (two adds in entry,
	// two in... precisely: 4 counter ops per passage, 1 RMR per level
	// each): slope 4, zero intercept; writer flat at 6.
	r := get("1")
	if math.Abs(r.ReaderSlope-4) > 0.3 {
		t.Errorf("af-1 reader slope = %.2f, want ~4", r.ReaderSlope)
	}
	if math.Abs(r.WriterSlope) > 0.1 {
		t.Errorf("af-1 writer slope = %.2f, want 0 (f constant)", r.WriterSlope)
	}
	// Writer cost is 3 RMRs per group for every parameterization with a
	// varying f.
	for _, f := range []string{"log", "sqrt", "half", "n"} {
		r := get(f)
		if math.Abs(r.WriterSlope-3) > 0.2 {
			t.Errorf("af-%s writer slope = %.2f, want 3", f, r.WriterSlope)
		}
	}
	// Fits are tight: every point within 15% of its fitted line.
	for _, r := range rows {
		if r.MaxRelErr > 0.15 {
			t.Errorf("af-%s: fit residual %.2f too large", r.FName, r.MaxRelErr)
		}
	}
}

// TestE14RecoverySweep runs the full crash-recovery characterization:
// E14RecoverySweep itself errors on any ME violation, budget hit, hang, or
// incomplete passage quota, so the test mostly pins the table shape.
func TestE14RecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive + sampled recovery sweeps")
	}
	rows, table, err := E14RecoverySweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || table == nil {
		t.Fatal("empty E14 result")
	}
	algs := map[string]bool{}
	recRow := false
	for _, r := range rows {
		algs[r.Alg] = true
		if r.OK != r.Points {
			t.Errorf("%s %s %s: %d/%d ok", r.Alg, r.Victim, r.Section, r.OK, r.Points)
		}
		if r.Section == memmodel.SecRecover.String() {
			recRow = true
		}
	}
	for _, want := range []string{"r-centralized", "r-af-log", "r-af-1"} {
		if !algs[want] {
			t.Errorf("no rows for %s", want)
		}
	}
	if !recRow {
		t.Error("no crash landed in a recovery section")
	}
}

// TestE15StallSweep runs the full fail-slow characterization:
// E15StallSweep itself errors on any liveness-contract violation or
// bypass-budget breach, so the test pins the aggregate shape — finite
// stalls always complete, remainder stalls never doom, in-CS stalls of
// non-recoverable locks always do.
func TestE15StallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive stall sweeps across the full population")
	}
	rows, table, err := E15StallSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || table == nil {
		t.Fatal("empty E15 result")
	}
	algs := map[string]bool{}
	doomedCS := 0
	for _, r := range rows {
		algs[r.Alg] = true
		if r.FinOK != r.FinPoints {
			t.Errorf("%s %s %s: %d/%d finite stalls completed", r.Alg, r.Victim, r.Section, r.FinOK, r.FinPoints)
		}
		if r.MEViol+r.Budget+r.Misclass != 0 {
			t.Errorf("%s %s %s: me=%d budget=%d misclass=%d", r.Alg, r.Victim, r.Section, r.MEViol, r.Budget, r.Misclass)
		}
		switch r.Section {
		case memmodel.SecRemainder.String():
			if r.SurvLive != r.InfPoints || r.Doomed != 0 {
				t.Errorf("%s %s remainder: %d/%d live, %d doomed", r.Alg, r.Victim, r.SurvLive, r.InfPoints, r.Doomed)
			}
		case memmodel.SecCS.String():
			doomedCS += r.Doomed
			if r.Doomed != r.InfPoints {
				t.Errorf("%s %s cs: %d/%d doomed — a non-recoverable lock stalled in the CS must wedge the rest",
					r.Alg, r.Victim, r.Doomed, r.InfPoints)
			}
		}
	}
	if doomedCS == 0 {
		t.Error("no in-CS stall doomed anyone across the whole population")
	}
	for _, want := range []string{"af-1", "af-log", "centralized", "faa-phasefair", "mutex-rw"} {
		if !algs[want] {
			t.Errorf("no rows for %s", want)
		}
	}
}

// TestE15ReaderLiveness pins the Concurrent-Entering axis including its
// negative control: the experiment itself fails if a CE-claiming
// algorithm dooms sibling readers or if mutex-rw stops failing.
func TestE15ReaderLiveness(t *testing.T) {
	rows, table, err := E15ReaderLiveness()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || table == nil {
		t.Fatal("empty reader-liveness result")
	}
	var mutexRow *E15ReaderRow
	for i, r := range rows {
		if r.Alg == "mutex-rw" {
			mutexRow = &rows[i]
		}
		if r.ClaimsCE && r.SiblingsLive != r.InCSPoints {
			t.Errorf("%s: claims CE but only %d/%d in-CS stalls left siblings live", r.Alg, r.SiblingsLive, r.InCSPoints)
		}
	}
	if mutexRow == nil {
		t.Fatal("mutex-rw negative control missing")
	}
	if mutexRow.DoomedReaders == 0 {
		t.Error("mutex-rw doomed no readers; the negative control is dead")
	}
	if mutexRow.SiblingsLive != 0 {
		t.Errorf("mutex-rw left siblings live at %d points; its readers serialize through the tournament mutex", mutexRow.SiblingsLive)
	}
}

// TestE15MixedSweep: the combined crash+stall sample holds safety and
// watchdog attribution (the experiment gates them) and actually produced
// runs for every algorithm.
func TestE15MixedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled mixed-fault sweeps across the full population")
	}
	rows, table, err := E15MixedSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || table == nil {
		t.Fatal("empty mixed result")
	}
	for _, r := range rows {
		if r.Runs == 0 {
			t.Errorf("%s: no mixed runs sampled", r.Alg)
		}
		if r.SurvLive+r.Doomed == 0 {
			t.Errorf("%s: no run classified as live or doomed", r.Alg)
		}
	}
}
