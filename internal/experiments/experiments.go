// Package experiments defines the reproduction experiments E1-E7 from
// DESIGN.md, one function per experiment. Each returns machine-readable
// rows plus a rendered text table; the cmd/ binaries print the tables and
// bench_test.go wraps the functions in testing.B targets so
// `go test -bench=.` regenerates every artifact.
//
// The paper (PODC 2016, theory) has no numbered tables or measurement
// figures; the experiments reproduce its quantitative *claims*:
//
//	E1  Theorem 18 upper bounds: writer Theta(f(n)), reader Theta(log(n/f)).
//	E2  Theorem 5 lower-bound construction (Figure 1): iterations r,
//	    expanding steps, Lemmas 1/2/4 checks.
//	E3  Corollaries 6-7: max(writer-entry, reader-exit) = Omega(log n) and
//	    the Omega(log m) writers-only bound.
//	E4  Cross-algorithm comparison over workload mixes (Section 6).
//	E5  Write-through vs write-back (Section 2: results hold for both).
//	E6  Property matrix: Mutual Exclusion, progress, reader overlap,
//	    Bounded Exit across algorithms and schedules (Section 5).
//	E7  Native throughput sanity (bench_test.go and cmd/rwbench).
package experiments

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/memmodel"
	"repro/internal/parwork"
)

// gridRows evaluates job over the (outer x inner) grid and returns one
// result per cell in row-major order — the order the equivalent nested
// loops would produce. Cells fan out across the process-default worker
// count (parwork.Default, set by the cmd -parallel flags); the error of
// the row-major-first failing cell wins, matching a serial loop that
// stops at its first failure. Jobs run concurrently, so they must only
// touch per-cell state (the Factory constructors are pure and safe).
//
// cost, when non-nil, is the cell's scheduling hint (parwork.CostHint
// semantics: relative magnitudes only, results never depend on it). The
// experiment grids are wildly uneven — an adversary run over n=243
// processes dwarfs one over n=9 by orders of magnitude — so the heavy
// grids pass their known row shape (step budget, process count) and the
// scheduler seeds the monster cells first instead of discovering them
// behind a drained pool. Pass nil for uniform grids.
func gridRows[A, B, R any](outer []A, inner []B, cost func(a A, b B) int64, job func(a A, b B) (R, error)) ([]R, error) {
	if len(inner) == 0 || len(outer) == 0 {
		return nil, nil
	}
	var hint parwork.CostHint
	if cost != nil {
		hint = func(i int) int64 { return cost(outer[i/len(inner)], inner[i%len(inner)]) }
	}
	return parwork.DoErrCost(0, len(outer)*len(inner), hint, func(i int) (R, error) {
		return job(outer[i/len(inner)], inner[i%len(inner)])
	})
}

// nSquaredCost is the grid cost hint for experiments whose inner axis is
// the process count n: a cell's work grows superlinearly with n (more
// processes, more passages in flight, longer entry/exit protocols), and
// the adversary-driven grids' step budgets grow ~4n^2. Exactness is
// irrelevant — LPT only needs big cells ordered before small ones.
func nSquaredCost[A any](_ A, n int) int64 { return int64(n) * int64(n) }

// Factory creates fresh algorithm instances; algorithms are single-use
// (one Init per execution), so experiments construct one per run.
type Factory struct {
	// Name is the algorithm name the factory produces.
	Name string
	// New returns a fresh, uninitialized instance.
	New func() memmodel.Algorithm
	// F is the A_f parameterization, when the algorithm is an A_f member.
	F core.F
	// HasF reports whether F is meaningful.
	HasF bool
}

// AFFactories returns factories for the standard A_f parameterizations.
func AFFactories() []Factory {
	out := make([]Factory, 0, len(core.StandardFs))
	for _, f := range core.StandardFs {
		f := f
		out = append(out, Factory{
			Name: "af-" + f.Name,
			New:  func() memmodel.Algorithm { return core.New(f) },
			F:    f,
			HasF: true,
		})
	}
	return out
}

// BaselineFactories returns factories for the comparison baselines: the
// Section-6 discussion points plus the classic literature locks (Courtois
// et al. 1971, the big-reader pattern).
func BaselineFactories() []Factory {
	return []Factory{
		{Name: "centralized", New: func() memmodel.Algorithm { return baseline.NewCentralized() }},
		{Name: "flag-array", New: func() memmodel.Algorithm { return baseline.NewFlagArray() }},
		{Name: "faa-phasefair", New: func() memmodel.Algorithm { return baseline.NewPhaseFair() }},
		{Name: "mutex-rw", New: func() memmodel.Algorithm { return baseline.NewMutexRW() }},
		{Name: "brlock", New: func() memmodel.Algorithm { return baseline.NewBRLock() }},
		{Name: "courtois-r", New: func() memmodel.Algorithm { return baseline.NewCourtoisR() }},
		{Name: "courtois-w", New: func() memmodel.Algorithm { return baseline.NewCourtoisW() }},
		{Name: "queue-rw", New: func() memmodel.Algorithm { return baseline.NewQueueRW() }},
	}
}

// AllFactories returns A_f members followed by baselines.
func AllFactories() []Factory {
	return append(AFFactories(), BaselineFactories()...)
}

// ExtendedFactories returns AllFactories plus the ablation variants
// (counter kinds, WL substrates) and the writer-priority composition —
// everything the wide property matrix (E6) should certify.
func ExtendedFactories() []Factory {
	out := AllFactories()
	out = append(out,
		Factory{Name: "af-log+casword", New: func() memmodel.Algorithm {
			return core.NewWithCounter(core.FLog, core.CounterCASWord)
		}},
		Factory{Name: "af-log+cellarray", New: func() memmodel.Algorithm {
			return core.NewWithCounter(core.FLog, core.CounterCellArray)
		}},
		Factory{Name: "af-log+clhwl", New: func() memmodel.Algorithm {
			return core.New(core.FLog, core.WithWriterMutex(core.MutexCLH))
		}},
		Factory{Name: "af-log+ticketwl", New: func() memmodel.Algorithm {
			return core.New(core.FLog, core.WithWriterMutex(core.MutexTicket))
		}},
		Factory{Name: "af-log+wpri", New: func() memmodel.Algorithm {
			return fairness.New(core.New(core.FLog))
		}},
	)
	return out
}
