package experiments

import (
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/tablefmt"
	"repro/internal/workload"
)

// E4Row compares one algorithm under one workload mix.
type E4Row struct {
	Alg string
	Mix string
	N   int
	M   int
	// MeanReaderRMR / MeanWriterRMR are per-passage means across all
	// processes and seeds.
	MeanReaderRMR float64
	MeanWriterRMR float64
	// P95ReaderRMR captures tail cost (invalidation storms show up here).
	P95ReaderRMR float64
	// TotalRMR is the execution-wide RMR count (coherence traffic proxy),
	// averaged over seeds.
	TotalRMR float64
}

// E4Baselines runs the cross-algorithm comparison: every algorithm, every
// mix, a fixed population, averaged over seeds under random scheduling.
func E4Baselines(n, m int, seeds []int64, protocol sim.Protocol) ([]E4Row, *tablefmt.Table, error) {
	// nil cost: every cell runs the same population over the same passage
	// plan — the mixes axis does not change the row shape.
	rows, err := gridRows(AllFactories(), workload.Mixes, nil, func(fac Factory, mix workload.Mix) (E4Row, error) {
		rp, wp := workload.Plan(n, m, 8*(n+m), mix)
		var readerRMRs, writerRMRs, totals []float64
		for _, seed := range seeds {
			rep := spec.Run(fac.New(), spec.Scenario{
				NReaders: n, NWriters: m,
				ReaderPassages: rp, WriterPassages: wp,
				Protocol:  protocol,
				Scheduler: sched.NewRandom(seed),
				MaxSteps:  50_000_000,
				CSReads:   1,
			})
			if !rep.OK() {
				return E4Row{}, &RunError{Exp: "E4", Alg: fac.Name, N: n, Detail: rep.Failures()}
			}
			total := 0
			for _, acct := range rep.ReaderAccounts {
				total += acct.TotalRMR
				for _, pass := range acct.Passages {
					readerRMRs = append(readerRMRs, float64(pass.RMR()))
				}
			}
			for _, acct := range rep.WriterAccounts {
				total += acct.TotalRMR
				for _, pass := range acct.Passages {
					writerRMRs = append(writerRMRs, float64(pass.RMR()))
				}
			}
			totals = append(totals, float64(total))
		}
		rs := stats.Summarize(readerRMRs)
		ws := stats.Summarize(writerRMRs)
		ts := stats.Summarize(totals)
		return E4Row{
			Alg: fac.Name, Mix: mix.Name, N: n, M: m,
			MeanReaderRMR: rs.Mean, MeanWriterRMR: ws.Mean,
			P95ReaderRMR: rs.P95, TotalRMR: ts.Mean,
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, e4Table(rows), nil
}

func e4Table(rows []E4Row) *tablefmt.Table {
	t := tablefmt.New("algorithm", "mix", "n", "m",
		"reader RMR/pass", "reader p95", "writer RMR/pass", "total RMR")
	last := ""
	for _, r := range rows {
		if last != "" && r.Alg != last {
			t.AddRule()
		}
		last = r.Alg
		t.AddRow(r.Alg, r.Mix, tablefmt.Itoa(r.N), tablefmt.Itoa(r.M),
			tablefmt.F1(r.MeanReaderRMR), tablefmt.F1(r.P95ReaderRMR),
			tablefmt.F1(r.MeanWriterRMR), tablefmt.F1(r.TotalRMR))
	}
	return t
}
