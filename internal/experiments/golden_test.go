package experiments

// Golden-table regression tests: the simulator experiments are fully
// deterministic, so their rendered tables can be pinned byte-for-byte.
// Any change to the simulator's RMR accounting, the algorithms, or the
// schedulers shows up here as a diff — regenerate intentionally with
//
//	go test ./internal/experiments -run Golden -update

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("table %s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenE1(t *testing.T) {
	_, table, err := E1Tradeoff([]int{8, 64}, sim.WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e1_wt", table.String())
}

func TestGoldenE2(t *testing.T) {
	_, table, err := E2LowerBound([]int{9, 27}, sim.WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e2_wt", table.String())
}

func TestGoldenE5(t *testing.T) {
	_, table, err := E5Protocols([]int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e5", table.String())
}

func TestGoldenE8(t *testing.T) {
	_, table, err := E8ModelContrast([]int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e8", table.String())
}

func TestGoldenE10(t *testing.T) {
	_, table, err := E10MutexSubstrates([]int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e10", table.String())
}

func TestGoldenE12(t *testing.T) {
	_, table, err := E12ShapeFits([]int{8, 32, 128}, sim.WriteThrough)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e12", table.String())
}
