package experiments

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/spec"
	"repro/internal/tablefmt"
)

// E15 characterizes robustness under the fail-slow model (DESIGN.md
// "Fault model", §4c): E15StallSweep exhaustively pauses one reader and
// one writer at every step boundary of a small workload — each boundary
// once with a finite delay longer than the whole execution and once
// forever — and aggregates, per stall section, whether the survivors
// stayed live, were doomed by busy-waiting on the victim, and how often a
// waiting process was overtaken (bypass) while the victim was slow.
// E15ReaderLiveness is the Concurrent-Entering axis on a readers-only
// workload: algorithms with genuine reader concurrency must keep sibling
// readers live when one reader stalls forever inside the CS, while
// mutex-rw — readers serialized through its tournament mutex — is the
// negative control that must demonstrably fail. E15MixedSweep samples the
// combined crash+stall model and holds the safety axes.

// E15StallRow aggregates the sweep outcomes for one (algorithm, victim
// class, stall section) cell.
type E15StallRow struct {
	Alg string
	// Victim is "reader" or "writer".
	Victim string
	// Section names the section the victim occupied when it stalled.
	Section string
	// FinPoints counts finite-delay points in that section; FinOK those
	// whose execution completed in full (must be all of them: a finite
	// stall only delays).
	FinPoints, FinOK int
	// InfPoints counts indefinite points; SurvLive those after which every
	// survivor completed, Doomed those that wedged at least one survivor.
	InfPoints, SurvLive, Doomed int
	// MEViol counts Mutual Exclusion violations (must be zero).
	MEViol int
	// Budget counts runs that hit the step budget (must be zero) and
	// Misclass watchdog misattributions (must be zero).
	Budget, Misclass int
	// MaxRB / MaxWB are the worst single-wait reader and writer bypass
	// counts observed across the cell's runs.
	MaxRB, MaxWB int
}

// e15StallScenario is the sweep workload, shared with the crash sweep
// (E13) so the two fault models are compared on the same executions.
func e15StallScenario() spec.Scenario {
	return spec.Scenario{NReaders: 2, NWriters: 2, ReaderPassages: 2, WriterPassages: 2, CSReads: 1}
}

// E15StallSweep runs the exhaustive stall sweep for every algorithm and
// both victim classes, enforcing the section-sensitive liveness contract
// and the bypass budget: no single wait may be overtaken more often than
// the other processes have passages to overtake it with.
func E15StallSweep() ([]E15StallRow, *tablefmt.Table, error) {
	sc := e15StallScenario()
	nProcs := sc.NReaders + sc.NWriters
	// Every other process enters the CS at most its passage quota, so a
	// single wait can be bypassed at most (N-1) x passages times; more
	// means the monitor (or the lock) is broken.
	bypassBudget := (nProcs - 1) * sc.ReaderPassages
	victims := []struct {
		name string
		id   int
	}{
		{"reader", 0},
		{"writer", sc.NReaders},
	}
	var rows []E15StallRow
	for _, fac := range e13CrashAlgs() {
		for _, v := range victims {
			outs, err := spec.StallSweep(fac.New, sc, v.id, nil)
			if err != nil {
				return nil, nil, fmt.Errorf("E15 %s victim %s: %w", fac.Name, v.name, err)
			}
			if viol := spec.StallViolations(outs); len(viol) > 0 {
				return nil, nil, fmt.Errorf("E15 %s victim %s: %d liveness-contract violations, first: %s",
					fac.Name, v.name, len(viol), viol[0])
			}
			bySection := map[memmodel.Section]*E15StallRow{}
			order := []memmodel.Section{memmodel.SecRemainder, memmodel.SecEntry, memmodel.SecCS, memmodel.SecExit}
			for _, s := range order {
				bySection[s] = &E15StallRow{Alg: fac.Name, Victim: v.name, Section: s.String()}
			}
			for _, o := range outs {
				row := bySection[o.StallSection]
				row.MEViol += len(o.MEViolations)
				row.Misclass += len(o.Misclassified)
				if o.BudgetExceeded {
					row.Budget++
				}
				if o.Point.Indefinite() {
					row.InfPoints++
					if o.SurvivorsDone {
						row.SurvLive++
					}
					if o.Doomed() {
						row.Doomed++
					}
				} else {
					row.FinPoints++
					if o.Completed {
						row.FinOK++
					}
				}
				row.MaxRB = max(row.MaxRB, o.MaxReaderBypass)
				row.MaxWB = max(row.MaxWB, o.MaxWriterBypass)
				if o.MaxReaderBypass > bypassBudget || o.MaxWriterBypass > bypassBudget {
					return nil, nil, fmt.Errorf("E15 %s victim %s %s: bypass %d/%d exceeds the budget of %d",
						fac.Name, v.name, o.Point, o.MaxReaderBypass, o.MaxWriterBypass, bypassBudget)
				}
			}
			for _, s := range order {
				if r := bySection[s]; r.FinPoints+r.InfPoints > 0 {
					rows = append(rows, *r)
				}
			}
		}
	}
	return rows, e15StallTable(rows), nil
}

func e15StallTable(rows []E15StallRow) *tablefmt.Table {
	t := tablefmt.New("algorithm", "victim", "stall section", "fin pts", "fin ok",
		"inf pts", "surv live", "doomed", "me viol", "budget", "misclass", "max rd byp", "max wr byp")
	for _, r := range rows {
		t.AddRow(r.Alg, r.Victim, r.Section, tablefmt.Itoa(r.FinPoints), tablefmt.Itoa(r.FinOK),
			tablefmt.Itoa(r.InfPoints), tablefmt.Itoa(r.SurvLive), tablefmt.Itoa(r.Doomed),
			tablefmt.Itoa(r.MEViol), tablefmt.Itoa(r.Budget), tablefmt.Itoa(r.Misclass),
			tablefmt.Itoa(r.MaxRB), tablefmt.Itoa(r.MaxWB))
	}
	return t
}

// E15ReaderRow is the Concurrent-Entering axis result for one algorithm.
type E15ReaderRow struct {
	Alg string
	// ClaimsCE echoes the algorithm's Props().ConcurrentEntering claim.
	ClaimsCE bool
	// InCSPoints counts indefinite stall points landing inside the
	// victim reader's CS.
	InCSPoints int
	// SiblingsLive counts those points after which the sibling readers
	// all completed; DoomedReaders counts points that wedged at least one
	// sibling.
	SiblingsLive, DoomedReaders int
}

// E15ReaderLiveness stall-sweeps a readers-only workload with reader 0 as
// the victim. The gate is two-sided: every algorithm claiming Concurrent
// Entering must keep the sibling readers live through every indefinite
// in-CS stall of the victim, and mutex-rw — the negative control, whose
// readers busy-wait on the stalled holder inside the tournament mutex —
// must demonstrably doom them (otherwise the axis cannot detect the
// failure mode it exists for).
func E15ReaderLiveness() ([]E15ReaderRow, *tablefmt.Table, error) {
	// Readers-only: mixed workloads would let a phase-fair lock park
	// readers behind a pending writer, conflating writer preference with
	// broken reader concurrency.
	sc := spec.Scenario{NReaders: 3, NWriters: 0, ReaderPassages: 2, CSReads: 2}
	var rows []E15ReaderRow
	sawNegativeControl := false
	for _, fac := range e13CrashAlgs() {
		outs, err := spec.StallSweep(fac.New, sc, 0, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("E15 reader-liveness %s: %w", fac.Name, err)
		}
		if viol := spec.StallViolations(outs); len(viol) > 0 {
			return nil, nil, fmt.Errorf("E15 reader-liveness %s: %d contract violations, first: %s",
				fac.Name, len(viol), viol[0])
		}
		row := E15ReaderRow{Alg: fac.Name, ClaimsCE: fac.New().Props().ConcurrentEntering}
		for _, o := range outs {
			if !o.Point.Indefinite() || o.StallSection != memmodel.SecCS {
				continue
			}
			row.InCSPoints++
			if o.SurvivorsDone {
				row.SiblingsLive++
			}
			if o.Doomed() {
				row.DoomedReaders++
			}
		}
		if row.InCSPoints == 0 {
			return nil, nil, fmt.Errorf("E15 reader-liveness %s: no indefinite in-CS stall point; sweep not reaching the CS", fac.Name)
		}
		if row.ClaimsCE && (row.DoomedReaders > 0 || row.SiblingsLive != row.InCSPoints) {
			return nil, nil, fmt.Errorf(
				"E15 reader-liveness %s: claims Concurrent Entering but %d/%d in-CS stalls doomed sibling readers",
				fac.Name, row.DoomedReaders, row.InCSPoints)
		}
		if fac.Name == "mutex-rw" {
			if row.DoomedReaders == 0 {
				return nil, nil, fmt.Errorf(
					"E15 reader-liveness: negative control mutex-rw doomed no sibling readers — the axis cannot detect busy-waiting on a stalled victim")
			}
			sawNegativeControl = true
		}
		rows = append(rows, row)
	}
	if !sawNegativeControl {
		return nil, nil, fmt.Errorf("E15 reader-liveness: population lost the mutex-rw negative control")
	}
	return rows, e15ReaderTable(rows), nil
}

func e15ReaderTable(rows []E15ReaderRow) *tablefmt.Table {
	t := tablefmt.New("algorithm", "claims CE", "in-cs stalls", "siblings live", "doomed readers")
	for _, r := range rows {
		ce := "no"
		if r.ClaimsCE {
			ce = "yes"
		}
		t.AddRow(r.Alg, ce, tablefmt.Itoa(r.InCSPoints), tablefmt.Itoa(r.SiblingsLive), tablefmt.Itoa(r.DoomedReaders))
	}
	return t
}

// E15MixedRow aggregates the sampled crash+stall sweep for one algorithm.
type E15MixedRow struct {
	Alg string
	// Runs counts sampled executions; SurvLive those where every
	// non-victim met its quota; Doomed those that wedged a survivor.
	Runs, SurvLive, Doomed int
	// MEViol, Budget, Misclass are the safety/attribution axes (must be
	// zero).
	MEViol, Budget, Misclass int
}

// E15MixedSweep samples the combined fault model — one crash victim and
// one stall victim per run — over seeded random schedules. Liveness under
// two simultaneous faults is characterized, not gated; safety and
// watchdog attribution must hold in every run.
func E15MixedSweep() ([]E15MixedRow, *tablefmt.Table, error) {
	sc := e15StallScenario()
	seeds := []int64{1, 2, 3}
	var rows []E15MixedRow
	for _, fac := range e13CrashAlgs() {
		outs, err := spec.MixedSweepSampled(fac.New, sc,
			[]int{0, 1}, []int{sc.NReaders, sc.NReaders + 1}, seeds, 6, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("E15 mixed %s: %w", fac.Name, err)
		}
		row := E15MixedRow{Alg: fac.Name}
		for _, o := range outs {
			if o.Err != nil {
				return nil, nil, fmt.Errorf("E15 mixed %s %s: %w", fac.Name, o.Point, o.Err)
			}
			row.Runs++
			row.MEViol += len(o.MEViolations)
			row.Misclass += len(o.Misclassified)
			if o.BudgetExceeded {
				row.Budget++
			}
			if o.SurvivorsDone {
				row.SurvLive++
			}
			if o.Doomed() {
				row.Doomed++
			}
		}
		if row.MEViol > 0 || row.Budget > 0 || row.Misclass > 0 {
			return nil, nil, fmt.Errorf("E15 mixed %s: %d ME violations, %d budget hits, %d misclassifications",
				fac.Name, row.MEViol, row.Budget, row.Misclass)
		}
		rows = append(rows, row)
	}
	return rows, e15MixedTable(rows), nil
}

func e15MixedTable(rows []E15MixedRow) *tablefmt.Table {
	t := tablefmt.New("algorithm", "runs", "surv live", "doomed", "me viol", "budget", "misclass")
	for _, r := range rows {
		t.AddRow(r.Alg, tablefmt.Itoa(r.Runs), tablefmt.Itoa(r.SurvLive), tablefmt.Itoa(r.Doomed),
			tablefmt.Itoa(r.MEViol), tablefmt.Itoa(r.Budget), tablefmt.Itoa(r.Misclass))
	}
	return t
}
