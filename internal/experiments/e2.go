package experiments

import (
	"errors"
	"fmt"

	"repro/internal/lowerbound"
	"repro/internal/sim"
	"repro/internal/tablefmt"
)

// E2Row is one adversarial construction (Theorem 5 / Figure 1).
type E2Row struct {
	Alg string
	N   int
	// FGroups is f(n) for A_f members, 0 for baselines.
	FGroups int
	// R is the number of expanding-batch iterations; the theorem says
	// R = Omega(log3(n/f(n))) for read/write/CAS algorithms.
	R int
	// Log3 is the reference bound log3(n/f(n)).
	Log3 float64
	// MaxExitExpanding / MaxExitRMR are a reader's worst exit costs under
	// the adversary.
	MaxExitExpanding int
	MaxExitRMR       int
	// WriterEntryRMR is the writer's E3 entry cost.
	WriterEntryRMR int
	// WriterAware counts readers in the writer's awareness set (Lemma 4:
	// must equal N).
	WriterAware int
	// MaxGrowth is the per-round growth of M (Lemma 2: at most 3).
	MaxGrowth float64
	// Lemma1Violations must be zero.
	Lemma1Violations int
}

// E2LowerBound runs the Theorem-5 adversary against the A_f family and the
// baselines that support concurrent reading.
func E2LowerBound(ns []int, protocol sim.Protocol) ([]E2Row, *tablefmt.Table, error) {
	facs := AFFactories()
	for _, b := range BaselineFactories() {
		if b.Name == "mutex-rw" {
			continue // cannot build fragment E1 (no concurrent reading)
		}
		facs = append(facs, b)
	}
	// The cell's step budget below is its known worst-case shape; use it
	// verbatim as the scheduling hint so n=243 adversary runs seed first.
	cellCost := func(_ Factory, n int) int64 { return 200_000 + 4*int64(n)*int64(n) }
	rows, err := gridRows(facs, ns, cellCost, func(fac Factory, n int) (E2Row, error) {
		// The cap is runaway protection only; the centralized
		// baseline legitimately needs Theta(n) iterations (its exit
		// is a CAS retry loop), so scale it with n.
		// Budgets scale quadratically because the centralized
		// baseline's exit loop legitimately needs Theta(n^2) total
		// steps under the adversary (n readers x Theta(n) retries).
		res, err := lowerbound.Run(fac.New(), n, lowerbound.Config{
			Protocol:     protocol,
			IterationCap: 4*n + 64,
			StepBudget:   200_000 + 4*n*n,
		})
		if err != nil {
			return E2Row{}, fmt.Errorf("E2 %s n=%d: %w", fac.Name, n, err)
		}
		row := E2Row{
			Alg:              fac.Name,
			N:                n,
			R:                res.R,
			MaxExitExpanding: res.MaxReaderExitExpanding,
			MaxExitRMR:       res.MaxReaderExitRMR,
			WriterEntryRMR:   res.WriterEntryRMR,
			WriterAware:      res.WriterAwareReaders,
			MaxGrowth:        res.MaxRoundGrowth,
			Lemma1Violations: res.Lemma1Violations,
		}
		if fac.HasF {
			row.FGroups = fac.F.Groups(n)
			row.Log3 = lowerbound.Log3Bound(n, row.FGroups)
		}
		if res.WriterAwareReaders != n {
			return E2Row{}, errors.New("E2: Lemma 4 violated for " + fac.Name)
		}
		return row, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rows, e2Table(rows), nil
}

func e2Table(rows []E2Row) *tablefmt.Table {
	t := tablefmt.New("algorithm", "n", "f(n)", "r (iters)", "log3(n/f)",
		"max exit expanding", "max exit RMR", "writer entry RMR", "aware", "max growth", "lemma1 viol")
	last := ""
	for _, r := range rows {
		if last != "" && r.Alg != last {
			t.AddRule()
		}
		last = r.Alg
		f := "-"
		l3 := "-"
		if r.FGroups > 0 {
			f = tablefmt.Itoa(r.FGroups)
			l3 = tablefmt.F1(r.Log3)
		}
		t.AddRow(r.Alg, tablefmt.Itoa(r.N), f, tablefmt.Itoa(r.R), l3,
			tablefmt.Itoa(r.MaxExitExpanding), tablefmt.Itoa(r.MaxExitRMR),
			tablefmt.Itoa(r.WriterEntryRMR), tablefmt.Itoa(r.WriterAware),
			tablefmt.F2(r.MaxGrowth), tablefmt.Itoa(r.Lemma1Violations))
	}
	return t
}
