package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("N = %d", s.N)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || !almost(s.Min, 5) || !almost(s.Max, 5) || !almost(s.Mean, 5) ||
		!almost(s.Median, 5) || !almost(s.P95, 5) || !almost(s.StdDev, 0) {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if !almost(s.Mean, 3) || !almost(s.Median, 3) || !almost(s.Min, 1) || !almost(s.Max, 5) {
		t.Fatalf("Summary = %+v", s)
	}
	if !almost(s.StdDev, math.Sqrt(2)) {
		t.Errorf("StdDev = %v, want sqrt(2)", s.StdDev)
	}
	if s.P95 < 4.5 || s.P95 > 5 {
		t.Errorf("P95 = %v", s.P95)
	}
}

func TestSummarizeOrderInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		a := Summarize(xs)
		// Shuffle and re-summarize.
		rng.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		b := Summarize(xs)
		return almost(a.Mean, b.Mean) && almost(a.Median, b.Median) &&
			almost(a.Min, b.Min) && almost(a.Max, b.Max) && almost(a.P95, b.P95)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Median <= s.P95 && s.P95 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLinFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b := LinFit(xs, ys)
	if !almost(a, 3) || !almost(b, 2) {
		t.Fatalf("LinFit = (%v, %v), want (3, 2)", a, b)
	}
}

func TestLinFitDegenerate(t *testing.T) {
	a, b := LinFit([]float64{2, 2}, []float64{1, 3})
	if !almost(a, 2) || !almost(b, 0) {
		t.Fatalf("constant-x fit = (%v, %v)", a, b)
	}
	a, b = LinFit(nil, nil)
	if a != 0 || b != 0 {
		t.Fatalf("empty fit = (%v, %v)", a, b)
	}
}

func TestLinFitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	LinFit([]float64{1}, []float64{1, 2})
}

func TestLogFitExact(t *testing.T) {
	// y = 1 + 3*log2(x)
	xs := []float64{2, 4, 8, 16, 1024}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 3*math.Log2(x)
	}
	a, b := LogFit(xs, ys)
	if !almost(a, 1) || !almost(b, 3) {
		t.Fatalf("LogFit = (%v, %v), want (1, 3)", a, b)
	}
}

func TestLogFitRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on x <= 0")
		}
	}()
	LogFit([]float64{0, 1}, []float64{1, 2})
}

func TestGrowthRatio(t *testing.T) {
	if g := GrowthRatio([]float64{2, 4, 32}); !almost(g, 16) {
		t.Errorf("GrowthRatio = %v, want 16", g)
	}
	if !math.IsNaN(GrowthRatio([]float64{5})) {
		t.Error("single sample must yield NaN")
	}
	if !math.IsNaN(GrowthRatio([]float64{0, 5})) {
		t.Error("zero first sample must yield NaN")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got == "" {
		t.Error("empty String")
	}
}
