// Package stats provides the small statistical helpers the experiment
// tables need: summaries of sample sets and least-squares fits used to
// check asymptotic shapes (e.g. "reader RMRs grow like log2 K" becomes a
// log-fit slope close to the predicted constant).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample set.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Median float64
	P95          float64
	StdDev       float64
}

// Summarize computes a Summary; it returns a zero Summary for no samples.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varsum += d * d
	}
	s.StdDev = math.Sqrt(varsum / float64(len(xs)))

	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantile(sorted, 0.5)
	s.P95 = quantile(sorted, 0.95)
	return s
}

// quantile interpolates the q-quantile of sorted samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f mean=%.1f med=%.1f p95=%.1f max=%.1f",
		s.N, s.Min, s.Mean, s.Median, s.P95, s.Max)
}

// LinFit fits y = a + b*x by least squares and returns (a, b). It needs at
// least two points with distinct x values; otherwise b is 0 and a the mean.
func LinFit(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) {
		panic("stats: LinFit length mismatch")
	}
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

// LogFit fits y = a + b*log2(x) and returns (a, b): the slope b estimates
// the constant in a Theta(log n) growth law. All xs must be positive.
func LogFit(xs, ys []float64) (a, b float64) {
	lx := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			panic("stats: LogFit requires positive x")
		}
		lx[i] = math.Log2(x)
	}
	return LinFit(lx, ys)
}

// GrowthRatio returns ys[last]/ys[first] as a crude shape probe (e.g.
// linear growth across a 16x range of n gives ~16, logarithmic ~1.5-4).
func GrowthRatio(ys []float64) float64 {
	if len(ys) < 2 || ys[0] == 0 {
		return math.NaN()
	}
	return ys[len(ys)-1] / ys[0]
}
