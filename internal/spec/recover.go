// Crash-recovery property: under the crash-recovery failure model (see
// internal/fault), crashing a process at an arbitrary step boundary and
// restarting it as a fresh incarnation must preserve Mutual Exclusion
// across incarnations AND liveness: every process — survivor or restarted
// — completes all its passages. This is strictly stronger than the
// crash-stop sweep's safety-only check, and only algorithms implementing
// memmodel.RecoverableAlgorithm can pass it. The harness also measures the
// recovery section's RMR cost, the quantity Chan & Woelfel's RME lower
// bounds speak to.
package spec

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/memmodel"
	"repro/internal/parwork"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// RecoverOutcome is the result of one crash-recovery execution.
type RecoverOutcome struct {
	// Algorithm is the algorithm's name.
	Algorithm string
	// Scenario echoes the input.
	Scenario Scenario
	// Points echoes the injected restart points.
	Points []fault.RestartPoint
	// Events reports what each point did (crash section, restart step).
	Events []fault.RecoverEvent
	// Crashes and Restarts count the applied events.
	Crashes, Restarts int
	// Recoveries lists the recovery verdicts returned by the restarted
	// incarnations' ReaderRecover/WriterRecover calls, in completion order.
	// An incarnation whose recovery section was itself crashed contributes
	// no verdict (its successor does).
	Recoveries []memmodel.Recovery
	// MEViolations lists Mutual Exclusion violations across the whole
	// execution, incarnations included. Must always be empty.
	MEViolations []string
	// Incomplete lists processes that failed to complete their passage
	// quota. Must always be empty: recovery makes liveness a pass/fail
	// axis, unlike the crash-stop sweep.
	Incomplete []string
	// Steps is the execution's total step count.
	Steps int
	// RecoveryRMR and RecoverySteps total the cost incurred inside
	// recovery sections, across all processes and incarnations.
	RecoveryRMR, RecoverySteps int
	// Hung reports that the watchdog detected global non-progress even
	// after all pending restarts were applied.
	Hung bool
	// Stuck is the watchdog's diagnostic when Hung.
	Stuck []sim.StuckProc
	// BudgetExceeded reports that the run hit the step budget. Must never
	// happen: every wait is a local-spin Await, so a hang is caught
	// deterministically by the watchdog instead.
	BudgetExceeded bool
	// Err holds any other execution error (setup failure etc).
	Err error
}

// OK reports whether the execution was safe AND live: no ME violations,
// full passage completion, no hang, no budget hit, no error.
func (o *RecoverOutcome) OK() bool {
	return len(o.MEViolations) == 0 && len(o.Incomplete) == 0 &&
		!o.Hung && !o.BudgetExceeded && o.Err == nil
}

// CrashedInRecovery reports whether any crash landed inside a recovery
// section — the re-crashed-recovery configuration the acceptance gate
// requires at least one of.
func (o *RecoverOutcome) CrashedInRecovery() bool {
	for _, e := range o.Events {
		if e.Crashed && e.CrashSection == memmodel.SecRecover {
			return true
		}
	}
	return false
}

// Failures renders all problems as one string.
func (o *RecoverOutcome) Failures() string {
	s := ""
	for _, v := range o.MEViolations {
		s += v + "\n"
	}
	for _, v := range o.Incomplete {
		s += v + "\n"
	}
	if o.Hung {
		s += fmt.Sprintf("hung with %d stuck processes after recovery\n", len(o.Stuck))
	}
	if o.BudgetExceeded {
		s += "step budget exceeded\n"
	}
	if o.Err != nil {
		s += o.Err.Error() + "\n"
	}
	return s
}

// RunCrashRecover executes the scenario against a fresh alg under the
// crash-recovery model: each restart point crashes its victim and
// re-admits it after the point's delay with a recovery program (recovery
// section, the verdict's continuation, then the victim's remaining
// passages). Passage quotas are tracked per process across incarnations,
// so a restarted process finishes exactly the passages its dead
// incarnations did not.
func RunCrashRecover(alg memmodel.RecoverableAlgorithm, sc Scenario, pts []fault.RestartPoint) *RecoverOutcome {
	var c runnerCache
	defer c.close()
	return runCrashRecoverOn(&c, alg, sc, pts)
}

// runCrashRecoverOn is RunCrashRecover on a cached runner.
func runCrashRecoverOn(c *runnerCache, alg memmodel.RecoverableAlgorithm, sc Scenario, pts []fault.RestartPoint) *RecoverOutcome {
	sc.defaults()
	out := &RecoverOutcome{Algorithm: alg.Name(), Scenario: sc, Points: pts}
	mon := newCSMonitor(sc.NReaders)
	observe := mon.observe
	if sc.Observer != nil {
		user := sc.Observer
		observe = func(e trace.Event) {
			mon.observe(e)
			user(e)
		}
	}
	r := c.get(sim.Config{
		Protocol:  sc.Protocol,
		Scheduler: sc.Scheduler,
		MaxSteps:  sc.MaxSteps,
		Observer:  observe,
	})

	if err := alg.Init(r, sc.NReaders, sc.NWriters); err != nil {
		out.Err = fmt.Errorf("init: %w", err)
		return out
	}
	scratch := r.Alloc("spec.scratch", 0)

	total := sc.NReaders + sc.NWriters
	counts := make([]int, total)
	quota := func(pid int) int {
		if pid < sc.NReaders {
			return sc.ReaderPassages
		}
		return sc.WriterPassages
	}
	enter := func(p sim.Proc, pid int) {
		if pid < sc.NReaders {
			alg.ReaderEnter(p, pid)
		} else {
			alg.WriterEnter(p, pid-sc.NReaders)
		}
	}
	exit := func(p sim.Proc, pid int) {
		if pid < sc.NReaders {
			alg.ReaderExit(p, pid)
		} else {
			alg.WriterExit(p, pid-sc.NReaders)
		}
	}
	csBody := func(p sim.Proc) {
		for k := 0; k < sc.CSReads; k++ {
			p.Read(scratch)
		}
	}
	passage := func(p sim.Proc, pid int) {
		p.Section(memmodel.SecEntry)
		enter(p, pid)
		p.Section(memmodel.SecCS)
		csBody(p)
		p.Section(memmodel.SecExit)
		exit(p, pid)
		p.Section(memmodel.SecRemainder)
		counts[pid]++
	}
	for pid := 0; pid < total; pid++ {
		pid := pid
		r.AddProc(func(p sim.Proc) {
			for counts[pid] < quota(pid) {
				passage(p, pid)
			}
		})
	}
	if err := r.Start(); err != nil {
		out.Err = err
		return out
	}

	// recoveryProg is what a restarted incarnation runs: recovery section,
	// the verdict's continuation (finish the interrupted CS and exit, just
	// the bookkeeping of a completed passage, or nothing for a rollback),
	// then the remaining passage quota.
	recoveryProg := func(victim int) sim.Program {
		return func(p sim.Proc) {
			p.Section(memmodel.SecRecover)
			var rec memmodel.Recovery
			if victim < sc.NReaders {
				rec = alg.ReaderRecover(p, victim)
			} else {
				rec = alg.WriterRecover(p, victim-sc.NReaders)
			}
			out.Recoveries = append(out.Recoveries, rec)
			switch rec {
			case memmodel.RecoverCS:
				p.Section(memmodel.SecCS)
				csBody(p)
				p.Section(memmodel.SecExit)
				exit(p, victim)
				p.Section(memmodel.SecRemainder)
				counts[victim]++
			case memmodel.RecoverDone:
				p.Section(memmodel.SecRemainder)
				counts[victim]++
			case memmodel.RecoverAbort:
				p.Section(memmodel.SecRemainder)
			}
			for counts[victim] < quota(victim) {
				passage(p, victim)
			}
		}
	}

	events, err := fault.DriveRecover(r, pts, recoveryProg)
	out.Events = events
	for _, e := range events {
		if e.Crashed {
			out.Crashes++
		}
		if e.Restarted {
			out.Restarts++
		}
	}
	out.Steps = r.StepCount()
	out.MEViolations = mon.violations

	var np *sim.NoProgressError
	switch {
	case err == nil:
	case errors.As(err, &np):
		out.Hung = true
		out.Stuck = np.Stuck
	case errors.Is(err, sim.ErrMaxSteps):
		out.BudgetExceeded = true
	default:
		out.Err = err
	}

	for pid := 0; pid < total; pid++ {
		if counts[pid] != quota(pid) {
			class, id := "reader r", pid
			if pid >= sc.NReaders {
				class, id = "writer w", pid-sc.NReaders
			}
			out.Incomplete = append(out.Incomplete, fmt.Sprintf(
				"%s%d completed %d/%d passages across %d incarnation(s)",
				class, id, counts[pid], quota(pid), r.Incarnation(pid)+1))
		}
		for _, acct := range r.AccountsOf(pid) {
			out.RecoveryRMR += acct.SectionRMR[memmodel.SecRecover]
			out.RecoverySteps += acct.SectionSteps[memmodel.SecRecover]
		}
	}
	return out
}

// RecoverySweep runs the scenario once crash-free to learn its length,
// then re-executes it from scratch for every crash point of the victim,
// restarting the victim delay steps after each crash. newAlg must return
// fresh instances and mkSched fresh scheduler state per run; a nil mkSched
// selects round-robin. The Scenario's Scheduler field is ignored.
// The recovery runs fan out across sc.Parallel workers (see
// Scenario.Parallel) with byte-identical results at every worker count;
// with Parallel != 1, newAlg and mkSched are called concurrently and must
// be safe for that (pure constructors are).
func RecoverySweep(newAlg func() memmodel.RecoverableAlgorithm, sc Scenario, victim, delay int, mkSched func() sched.Scheduler) ([]*RecoverOutcome, error) {
	if mkSched == nil {
		mkSched = func() sched.Scheduler { return sched.NewRoundRobin() }
	}
	ref := sc
	ref.Scheduler = mkSched()
	refOut := RunCrashRecover(newAlg(), ref, nil)
	if !refOut.OK() {
		return nil, fmt.Errorf("recovery sweep: reference run of %s failed: %s",
			refOut.Algorithm, refOut.Failures())
	}
	n := refOut.Steps + 1
	return robustDo(sc, "recover", refOut.Algorithm,
		[]string{"recover", refOut.Algorithm, fpScenario(sc), mkSched().Name(),
			fmt.Sprintf("victim=%d delay=%d refsteps=%d", victim, delay, refOut.Steps)},
		n,
		// Known row shape: replay the k-step prefix, sit out the restart
		// delay, then run recovery plus the survivors' remainder.
		func(k int) int64 { return int64(refOut.Steps + k + delay) },
		func(k int) string { return fault.RestartPoint{Victim: victim, Step: k, Delay: delay}.String() },
		func(c *runnerCache, k int) *RecoverOutcome {
			run := sc
			run.Scheduler = mkSched()
			return runCrashRecoverOn(c, newAlg(), run,
				[]fault.RestartPoint{{Victim: victim, Step: k, Delay: delay}})
		},
		func(k int, f *parwork.RowFailure) *RecoverOutcome {
			return &RecoverOutcome{Algorithm: refOut.Algorithm, Scenario: sc,
				Points: []fault.RestartPoint{{Victim: victim, Step: k, Delay: delay}}, Err: f}
		})
}

// RecoverySweepRecrash sweeps double-crash configurations: the victim is
// crashed at every stride-th boundary and restarted immediately, then
// crashed AGAIN offset steps later — for small offsets the second crash
// lands inside the recovery section, exercising re-crashed recovery. The
// victim's third incarnation must finish the repair.
func RecoverySweepRecrash(newAlg func() memmodel.RecoverableAlgorithm, sc Scenario, victim, stride int, offsets []int, mkSched func() sched.Scheduler) ([]*RecoverOutcome, error) {
	if mkSched == nil {
		mkSched = func() sched.Scheduler { return sched.NewRoundRobin() }
	}
	if stride < 1 {
		stride = 1
	}
	ref := sc
	ref.Scheduler = mkSched()
	refOut := RunCrashRecover(newAlg(), ref, nil)
	if !refOut.OK() {
		return nil, fmt.Errorf("recovery sweep: reference run of %s failed: %s",
			refOut.Algorithm, refOut.Failures())
	}
	pairs := make([][2]fault.RestartPoint, 0, (refOut.Steps/stride+1)*len(offsets))
	for k := 0; k <= refOut.Steps; k += stride {
		for _, off := range offsets {
			if off < 1 {
				// A same-step second point fires while the victim is still
				// dead and is skipped; only strictly-later offsets re-crash.
				continue
			}
			pairs = append(pairs, [2]fault.RestartPoint{
				{Victim: victim, Step: k, Delay: 0},
				{Victim: victim, Step: k + off, Delay: 0},
			})
		}
	}
	return robustDo(sc, "recover-recrash", refOut.Algorithm,
		[]string{"recover-recrash", refOut.Algorithm, fpScenario(sc), mkSched().Name(),
			fmt.Sprintf("victim=%d stride=%d offsets=%v refsteps=%d", victim, stride, offsets, refOut.Steps)},
		len(pairs),
		// The second crash lands at pairs[i][1].Step and triggers a second
		// recovery, so it bounds the pair's replayed prefix.
		func(i int) int64 { return int64(refOut.Steps + pairs[i][1].Step) },
		func(i int) string { return fmt.Sprintf("%s then %s", pairs[i][0], pairs[i][1]) },
		func(c *runnerCache, i int) *RecoverOutcome {
			run := sc
			run.Scheduler = mkSched()
			return runCrashRecoverOn(c, newAlg(), run, pairs[i][:])
		},
		func(i int, f *parwork.RowFailure) *RecoverOutcome {
			return &RecoverOutcome{Algorithm: refOut.Algorithm, Scenario: sc,
				Points: pairs[i][:], Err: f}
		})
}

// RecoverySweepSampled samples restart points under seed-parameterized
// schedules, deduplicated per seed like CrashSweepSampled. mkSched builds
// the scheduler for a seed; nil selects sched.NewRandom.
// Both phases fan out across sc.Parallel workers; see RecoverySweep for
// the concurrency requirements on newAlg and mkSched.
func RecoverySweepSampled(newAlg func() memmodel.RecoverableAlgorithm, sc Scenario, victims []int, seeds []int64, perSeed, delay int, mkSched func(seed int64) sched.Scheduler) ([]*RecoverOutcome, error) {
	if mkSched == nil {
		mkSched = func(seed int64) sched.Scheduler { return sched.NewRandom(seed) }
	}
	workers := sweepWorkers(sc)
	type job struct {
		seed int64
		pt   fault.RestartPoint
		ref  int // the seed's reference step count, the row's cost scale
	}
	type seedJobs struct {
		jobs     []job
		refSteps int
	}
	perSeedJobs, err := parwork.DoErr(workers, len(seeds), func(i int) (seedJobs, error) {
		seed := seeds[i]
		ref := sc
		ref.Scheduler = mkSched(seed)
		refOut := RunCrashRecover(newAlg(), ref, nil)
		if !refOut.OK() {
			return seedJobs{}, fmt.Errorf("recovery sweep: reference run of %s (seed %d) failed: %s",
				refOut.Algorithm, seed, refOut.Failures())
		}
		pts := dedupPoints(fault.RandomPoints(seed, victims, refOut.Steps+1, perSeed))
		jobs := make([]job, len(pts))
		for k, pt := range pts {
			jobs[k] = job{seed: seed, pt: fault.RestartPoint{Victim: pt.Victim, Step: pt.Step, Delay: delay}, ref: refOut.Steps}
		}
		return seedJobs{jobs: jobs, refSteps: refOut.Steps}, nil
	})
	if err != nil {
		return nil, err
	}
	jobs := make([]job, 0, len(seeds)*perSeed)
	refSteps := make([]int, 0, len(seeds))
	for _, sj := range perSeedJobs {
		jobs = append(jobs, sj.jobs...)
		refSteps = append(refSteps, sj.refSteps)
	}
	algName := newAlg().Name()
	return robustDo(sc, "recover-sampled", algName,
		[]string{"recover-sampled", algName, fpScenario(sc), sampledSchedName(mkSched, seeds),
			fmt.Sprintf("victims=%v seeds=%v perSeed=%d delay=%d refsteps=%v",
				victims, seeds, perSeed, delay, refSteps)},
		len(jobs),
		func(i int) int64 { return int64(jobs[i].ref + jobs[i].pt.Step + jobs[i].pt.Delay) },
		func(i int) string { return fmt.Sprintf("seed=%d %s", jobs[i].seed, jobs[i].pt) },
		func(c *runnerCache, i int) *RecoverOutcome {
			run := sc
			run.Scheduler = mkSched(jobs[i].seed)
			return runCrashRecoverOn(c, newAlg(), run, []fault.RestartPoint{jobs[i].pt})
		},
		func(i int, f *parwork.RowFailure) *RecoverOutcome {
			return &RecoverOutcome{Algorithm: algName, Scenario: sc,
				Points: []fault.RestartPoint{jobs[i].pt}, Err: f}
		})
}
