// Fail-slow property: under the stall failure model (see internal/fault),
// pausing one process at an arbitrary step boundary — finitely or forever —
// must never let a survivor violate Mutual Exclusion, and must never
// produce a hang the watchdog cannot attribute. The liveness contract is
// section-sensitive: a *finite* stall only delays, so the whole execution
// must still complete (Deadlock Freedom under delay — the paper's Section-5
// properties hold in a fully asynchronous model where the adversary may
// delay any process arbitrarily between steps); an *indefinite* stall in
// the remainder section must leave every survivor live, while an
// indefinite stall inside the CS (or while holding the inner mutex, for
// mutex-substrate algorithms) is allowed to doom exactly the survivors that
// busy-wait on the victim — and the checker must classify that case as
// doomed-by-stall, never as an algorithmic deadlock, a spurious
// no-progress, or a step-budget timeout. Per-process bypass counters
// (internal/fairness.BypassMonitor) ride along, turning reader
// non-starvation and writer bounded-bypass into quantitative sweep outputs.
package spec

import (
	"errors"
	"fmt"

	"repro/internal/fairness"
	"repro/internal/fault"
	"repro/internal/memmodel"
	"repro/internal/parwork"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// StallOutcome is the result of one execution with injected stalls (and,
// for mixed runs, crashes).
type StallOutcome struct {
	// Algorithm is the algorithm's name.
	Algorithm string
	// Point is the injected stall point.
	Point fault.StallPoint
	// CrashPoints echoes any additionally injected crash points (mixed
	// fault model).
	CrashPoints []fault.Point
	// VictimIsWriter classifies the stall victim under the spec numbering
	// (readers 0..n-1, writers n..n+m-1).
	VictimIsWriter bool
	// Stalled reports whether the stall was actually applied; false means
	// the victim finished before the stall step arrived (a moot point,
	// equivalent to a remainder-section stall).
	Stalled bool
	// StallSection is the passage section the victim occupied when it
	// stalled (SecRemainder for moot points).
	StallSection memmodel.Section
	// MEViolations lists Mutual Exclusion violations observed over the
	// whole execution. Must always be empty: a stall reorders steps but
	// never forges them.
	MEViolations []string
	// Completed reports that the whole execution terminated with every
	// process meeting its passage quota — always the case for finite
	// stalls, and for indefinite stalls only when the point was moot.
	Completed bool
	// SurvivorsDone reports that every non-victim process met its passage
	// quota (victims of crash points in mixed runs are excluded too).
	SurvivorsDone bool
	// DoomedProcs lists the survivors the watchdog found blocked forever
	// behind the stalled victim.
	DoomedProcs []sim.StuckProc
	// Misclassified lists watchdog-classification defects: a wedge the
	// watchdog failed to attribute to the injected faults (a stuck process
	// not marked doomed, or the stalled victim missing from the
	// diagnostic). Must always be empty.
	Misclassified []string
	// MaxReaderBypass and MaxWriterBypass are the worst single-wait
	// overtake counts observed by the bypass monitor for each class.
	MaxReaderBypass, MaxWriterBypass int
	// BypassByProc is the per-process worst single-wait overtake count.
	BypassByProc []int
	// BudgetExceeded reports that the run hit the step budget instead of
	// terminating or being caught by the watchdog. Must never happen.
	BudgetExceeded bool
	// Err holds any other execution error (setup failure etc).
	Err error
}

// Safe reports whether the execution preserved Mutual Exclusion.
func (o StallOutcome) Safe() bool { return len(o.MEViolations) == 0 }

// Doomed reports whether the stall wedged at least one survivor.
func (o StallOutcome) Doomed() bool { return len(o.DoomedProcs) > 0 }

// RunStall executes the scenario against a fresh alg, stalling pt.Victim
// at step boundary pt.Step for pt.Duration, and classifies the outcome.
func RunStall(alg memmodel.Algorithm, sc Scenario, pt fault.StallPoint) StallOutcome {
	return RunMixed(alg, sc, nil, pt)
}

// RunMixed executes the scenario under the combined fault model: the crash
// points crash-stop their victims while pt stalls its own. Crash victims
// count as victims for SurvivorsDone (a crash-stopped process never
// completes its quota, which is the crash model's expected outcome, not a
// liveness defect of the survivors).
func RunMixed(alg memmodel.Algorithm, sc Scenario, crashes []fault.Point, pt fault.StallPoint) StallOutcome {
	var c runnerCache
	defer c.close()
	return runMixedOn(&c, alg, sc, crashes, pt)
}

// runMixedOn is RunMixed on a cached runner.
func runMixedOn(c *runnerCache, alg memmodel.Algorithm, sc Scenario, crashes []fault.Point, pt fault.StallPoint) StallOutcome {
	sc.defaults()
	out := StallOutcome{
		Algorithm:      alg.Name(),
		Point:          pt,
		CrashPoints:    crashes,
		VictimIsWriter: pt.Victim >= sc.NReaders,
		StallSection:   memmodel.SecRemainder,
	}
	nProcs := sc.NReaders + sc.NWriters
	mon := newCSMonitor(sc.NReaders)
	byp := fairness.NewBypassMonitor(nProcs, sc.NReaders)
	userObs := sc.Observer
	sc.Observer = func(e trace.Event) {
		byp.Observe(e)
		if userObs != nil {
			userObs(e)
		}
	}
	r, err := buildRunner(c, alg, sc, mon)
	if err != nil {
		out.Err = err
		return out
	}

	events, err := fault.DriveMixed(r, crashes, []fault.StallPoint{pt})
	if len(events) == 1 && events[0].Stalled {
		out.Stalled = true
		out.StallSection = events[0].StallSection
	}
	out.MEViolations = mon.violations
	out.BypassByProc = make([]int, nProcs)
	for id := 0; id < nProcs; id++ {
		out.BypassByProc[id] = byp.MaxBypass(id)
	}
	out.MaxReaderBypass = byp.MaxReaderBypass()
	out.MaxWriterBypass = byp.MaxWriterBypass()

	victims := map[int]bool{pt.Victim: true}
	for _, c := range crashes {
		victims[c.Victim] = true
	}
	quota := func(id int) int {
		if id < sc.NReaders {
			return sc.ReaderPassages
		}
		return sc.WriterPassages
	}
	allDone, survDone := true, true
	for id := 0; id < nProcs; id++ {
		if len(r.Account(id).Passages) >= quota(id) {
			continue
		}
		allDone = false
		if !victims[id] {
			survDone = false
		}
	}
	out.SurvivorsDone = survDone

	var np *sim.NoProgressError
	switch {
	case err == nil:
		out.Completed = allDone
		// Clean termination means every process is done or crashed, so the
		// only legitimately incomplete processes are crash victims. An
		// alive-but-incomplete one is a harness invariant breach.
		for id := 0; id < nProcs; id++ {
			if len(r.Account(id).Passages) < quota(id) && r.Alive(id) {
				out.Err = fmt.Errorf("spec: %s terminated with p%d alive but short of its passage quota", pt, id)
				break
			}
		}
	case errors.As(err, &np):
		out.DoomedProcs = np.Stuck
		out.Misclassified = classifyWedge(np, out, r)
	case errors.Is(err, sim.ErrMaxSteps):
		out.BudgetExceeded = true
	default:
		out.Err = err
	}
	return out
}

// classifyWedge cross-checks the watchdog's verdict against the injected
// faults: with a stall or crash in play, every blocked survivor must be
// marked doomed, and an applied indefinite stall must surface the victim
// in the diagnostic's stalled list.
func classifyWedge(np *sim.NoProgressError, out StallOutcome, r *sim.Runner) []string {
	var bad []string
	for _, s := range np.Stuck {
		if !s.Doomed {
			bad = append(bad, fmt.Sprintf(
				"p%d reported blocked, not doomed, despite injected faults", s.Proc))
		}
	}
	if out.Stalled && out.Point.Indefinite() && r.IsStalled(out.Point.Victim) {
		found := false
		for _, s := range np.Stalled {
			if s.Proc == out.Point.Victim {
				found = true
				break
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf(
				"stalled victim p%d missing from the watchdog diagnostic", out.Point.Victim))
		}
	}
	return bad
}

// StallSweep runs the scenario once stall-free to learn its length, then
// re-executes it from scratch for every stall point of the victim — each
// step boundary twice: once with a finite delay longer than the whole
// reference execution (the strongest delay a fair adversary can apply) and
// once indefinitely (the fail-slow limit). newAlg must return fresh
// instances and mkSched fresh scheduler state per run; a nil mkSched
// selects round-robin. The Scheduler field of sc is ignored in favor of
// mkSched.
// The stall runs fan out across sc.Parallel workers (see
// Scenario.Parallel) with byte-identical results at every worker count;
// with Parallel != 1, newAlg and mkSched are called concurrently and must
// be safe for that (pure constructors are).
func StallSweep(newAlg func() memmodel.Algorithm, sc Scenario, victim int, mkSched func() sched.Scheduler) ([]StallOutcome, error) {
	if mkSched == nil {
		mkSched = func() sched.Scheduler { return sched.NewRoundRobin() }
	}
	ref := sc
	ref.Scheduler = mkSched()
	rep := Run(newAlg(), ref)
	if !rep.OK() {
		return nil, fmt.Errorf("stall sweep: reference run of %s failed: %s", rep.Algorithm, rep.Failures())
	}
	delay := rep.Steps + 1
	pts := make([]fault.StallPoint, 0, 2*(rep.Steps+1))
	for k := 0; k <= rep.Steps; k++ {
		for _, d := range []int{delay, fault.Forever} {
			pts = append(pts, fault.StallPoint{Victim: victim, Step: k, Duration: d})
		}
	}
	return robustDo(sc, "stall", rep.Algorithm,
		[]string{"stall", rep.Algorithm, fpScenario(sc), mkSched().Name(),
			fmt.Sprintf("victim=%d refsteps=%d", victim, rep.Steps)},
		len(pts),
		// Known row shape: a finite stall fast-forwards Duration extra
		// global steps on top of the replayed prefix and the survivors'
		// remainder; an indefinite stall (Forever) adds none.
		func(i int) int64 { return stallCost(rep.Steps, pts[i]) },
		func(i int) string { return pts[i].String() },
		func(c *runnerCache, i int) StallOutcome {
			run := sc
			run.Scheduler = mkSched()
			return runMixedOn(c, newAlg(), run, nil, pts[i])
		},
		func(i int, f *parwork.RowFailure) StallOutcome {
			return StallOutcome{Algorithm: rep.Algorithm, Point: pts[i],
				VictimIsWriter: pts[i].Victim >= sc.NReaders,
				StallSection:   memmodel.SecRemainder, Err: f}
		})
}

// StallSweepSampled samples stall points under seed-parameterized
// schedules — one reference run plus up to perSeed stall runs per seed,
// the points drawn duplicate-free over victims and the reference
// execution's step range with a mix of finite and indefinite durations.
// mkSched builds the scheduler for a seed; nil selects sched.NewRandom.
// Both phases fan out across sc.Parallel workers; see StallSweep for the
// concurrency requirements on newAlg and mkSched.
func StallSweepSampled(newAlg func() memmodel.Algorithm, sc Scenario, victims []int, seeds []int64, perSeed int, mkSched func(seed int64) sched.Scheduler) ([]StallOutcome, error) {
	if mkSched == nil {
		mkSched = func(seed int64) sched.Scheduler { return sched.NewRandom(seed) }
	}
	workers := sweepWorkers(sc)
	type job struct {
		seed int64
		pt   fault.StallPoint
		ref  int // the seed's reference step count, the row's cost scale
	}
	type seedJobs struct {
		jobs     []job
		refSteps int
	}
	perSeedJobs, err := parwork.DoErr(workers, len(seeds), func(i int) (seedJobs, error) {
		seed := seeds[i]
		ref := sc
		ref.Scheduler = mkSched(seed)
		rep := Run(newAlg(), ref)
		if !rep.OK() {
			return seedJobs{}, fmt.Errorf("stall sweep: reference run of %s (seed %d) failed: %s",
				rep.Algorithm, seed, rep.Failures())
		}
		pts := fault.RandomStallPoints(seed, victims, rep.Steps+1, perSeed, rep.Steps+1)
		jobs := make([]job, len(pts))
		for k, pt := range pts {
			jobs[k] = job{seed: seed, pt: pt, ref: rep.Steps}
		}
		return seedJobs{jobs: jobs, refSteps: rep.Steps}, nil
	})
	if err != nil {
		return nil, err
	}
	jobs := make([]job, 0, len(seeds)*perSeed)
	refSteps := make([]int, 0, len(seeds))
	for _, sj := range perSeedJobs {
		jobs = append(jobs, sj.jobs...)
		refSteps = append(refSteps, sj.refSteps)
	}
	algName := newAlg().Name()
	return robustDo(sc, "stall-sampled", algName,
		[]string{"stall-sampled", algName, fpScenario(sc), sampledSchedName(mkSched, seeds),
			fmt.Sprintf("victims=%v seeds=%v perSeed=%d refsteps=%v", victims, seeds, perSeed, refSteps)},
		len(jobs),
		func(i int) int64 { return stallCost(jobs[i].ref, jobs[i].pt) },
		func(i int) string { return fmt.Sprintf("seed=%d %s", jobs[i].seed, jobs[i].pt) },
		func(c *runnerCache, i int) StallOutcome {
			run := sc
			run.Scheduler = mkSched(jobs[i].seed)
			return runMixedOn(c, newAlg(), run, nil, jobs[i].pt)
		},
		func(i int, f *parwork.RowFailure) StallOutcome {
			return StallOutcome{Algorithm: algName, Point: jobs[i].pt,
				VictimIsWriter: jobs[i].pt.Victim >= sc.NReaders,
				StallSection:   memmodel.SecRemainder, Err: f}
		})
}

// MixedSweepSampled samples combined crash+stall configurations: per seed,
// up to perSeed runs each pairing one crash point with one stall point
// against distinct victims (crash victims drawn from crashVictims, stall
// victims from stallVictims, skipping collisions). Only safety and
// watchdog-classification axes are pass/fail for mixed runs; liveness is
// characterized through the returned outcomes.
// Both phases fan out across sc.Parallel workers; see StallSweep for the
// concurrency requirements on newAlg and mkSched.
func MixedSweepSampled(newAlg func() memmodel.Algorithm, sc Scenario, crashVictims, stallVictims []int, seeds []int64, perSeed int, mkSched func(seed int64) sched.Scheduler) ([]StallOutcome, error) {
	if mkSched == nil {
		mkSched = func(seed int64) sched.Scheduler { return sched.NewRandom(seed) }
	}
	workers := sweepWorkers(sc)
	type job struct {
		seed  int64
		crash fault.Point
		stall fault.StallPoint
		ref   int // the seed's reference step count, the row's cost scale
	}
	type seedJobs struct {
		jobs     []job
		refSteps int
	}
	perSeedJobs, err := parwork.DoErr(workers, len(seeds), func(i int) (seedJobs, error) {
		seed := seeds[i]
		ref := sc
		ref.Scheduler = mkSched(seed)
		rep := Run(newAlg(), ref)
		if !rep.OK() {
			return seedJobs{}, fmt.Errorf("mixed sweep: reference run of %s (seed %d) failed: %s",
				rep.Algorithm, seed, rep.Failures())
		}
		crashes := fault.RandomPoints(seed, crashVictims, rep.Steps+1, perSeed)
		stalls := fault.RandomStallPoints(seed+1, stallVictims, rep.Steps+1, perSeed, rep.Steps+1)
		n := min(len(crashes), len(stalls))
		jobs := make([]job, 0, n)
		for k := 0; k < n; k++ {
			if crashes[k].Victim == stalls[k].Victim {
				continue
			}
			jobs = append(jobs, job{seed: seed, crash: crashes[k], stall: stalls[k], ref: rep.Steps})
		}
		return seedJobs{jobs: jobs, refSteps: rep.Steps}, nil
	})
	if err != nil {
		return nil, err
	}
	jobs := make([]job, 0, len(seeds)*perSeed)
	refSteps := make([]int, 0, len(seeds))
	for _, sj := range perSeedJobs {
		jobs = append(jobs, sj.jobs...)
		refSteps = append(refSteps, sj.refSteps)
	}
	algName := newAlg().Name()
	return robustDo(sc, "mixed-sampled", algName,
		[]string{"mixed-sampled", algName, fpScenario(sc), sampledSchedName(mkSched, seeds),
			fmt.Sprintf("crashVictims=%v stallVictims=%v seeds=%v perSeed=%d refsteps=%v",
				crashVictims, stallVictims, seeds, perSeed, refSteps)},
		len(jobs),
		func(i int) int64 { return stallCost(jobs[i].ref, jobs[i].stall) },
		func(i int) string {
			return fmt.Sprintf("seed=%d %s + %s", jobs[i].seed, jobs[i].crash, jobs[i].stall)
		},
		func(c *runnerCache, i int) StallOutcome {
			run := sc
			run.Scheduler = mkSched(jobs[i].seed)
			return runMixedOn(c, newAlg(), run, []fault.Point{jobs[i].crash}, jobs[i].stall)
		},
		func(i int, f *parwork.RowFailure) StallOutcome {
			return StallOutcome{Algorithm: algName, Point: jobs[i].stall,
				CrashPoints:    []fault.Point{jobs[i].crash},
				VictimIsWriter: jobs[i].stall.Victim >= sc.NReaders,
				StallSection:   memmodel.SecRemainder, Err: f}
		})
}

// StallViolations applies the section-sensitive fail-slow liveness
// contract to a sweep's outcomes and renders every breach:
//
//   - Mutual Exclusion must survive every stall (safety under delay).
//   - No run may hit the step budget: every wedge is watchdog-caught.
//   - The watchdog must attribute every wedge to the injected faults
//     (no Misclassified entries).
//   - A finite stall must leave the whole execution complete — the
//     simulator fast-forwards delays that would otherwise wedge, so any
//     incompleteness is a genuine Deadlock-Freedom-under-delay breach.
//   - An indefinite stall in the remainder section (including moot points)
//     must leave every survivor live.
//
// Indefinite stalls in entry/CS/exit may doom survivors that busy-wait on
// the victim; those outcomes are characterized (DoomedProcs, per-section
// tallies) rather than flagged here. Callers with stronger expectations —
// e.g. sibling-reader liveness under an in-CS reader stall for
// Concurrent-Entering algorithms — layer them on top (see experiments
// E15).
func StallViolations(outs []StallOutcome) []string {
	var v []string
	for _, o := range outs {
		id := fmt.Sprintf("%s %s", o.Algorithm, o.Point)
		if o.Err != nil {
			v = append(v, fmt.Sprintf("%s: error: %v", id, o.Err))
			continue
		}
		if len(o.MEViolations) > 0 {
			v = append(v, fmt.Sprintf("%s: %d mutual-exclusion violations", id, len(o.MEViolations)))
		}
		if o.BudgetExceeded {
			v = append(v, id+": hang escaped the watchdog (step-budget timeout)")
			continue
		}
		for _, m := range o.Misclassified {
			v = append(v, id+": watchdog misclassification: "+m)
		}
		if !o.Point.Indefinite() {
			if !o.Completed {
				v = append(v, fmt.Sprintf(
					"%s: finite stall wedged the execution (deadlock freedom under delay broken; %d doomed)",
					id, len(o.DoomedProcs)))
			}
			continue
		}
		if o.StallSection == memmodel.SecRemainder && !o.SurvivorsDone {
			v = append(v, id+": remainder-section stall wedged survivors")
		}
	}
	return v
}

// stallCost is the scheduling hint for a stall row: the replayed prefix
// plus the survivors' remainder (both bounded by the reference length),
// plus the fast-forwarded delay for a finite stall. Indefinite stalls
// add no delay steps — they either wedge (detected early) or complete
// without the victim.
func stallCost(refSteps int, pt fault.StallPoint) int64 {
	c := int64(refSteps + pt.Step)
	if !pt.Indefinite() {
		c += int64(pt.Duration)
	}
	return c
}
