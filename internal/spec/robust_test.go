package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/parwork"
	"repro/internal/recoverable"
	"repro/internal/sched"
)

// TestCheckpointResumeDeterminism is the acceptance gate for crash-safe
// sweeps: a sweep interrupted by its Stopper and resumed from the
// checkpoint must produce output byte-identical to an uninterrupted run —
// at worker counts 1, 2 and NumCPU, across the three outcome wire formats
// (CrashOutcome, StallOutcome, *RecoverOutcome with its Scenario stub).
func TestCheckpointResumeDeterminism(t *testing.T) {
	newAlg := func() memmodel.Algorithm { return core.New(core.FLog) }
	newRec := func() memmodel.RecoverableAlgorithm { return recoverable.NewCentralized() }
	base := Scenario{NReaders: 2, NWriters: 2, ReaderPassages: 2, WriterPassages: 2, CSReads: 1}
	seeds := []int64{1, 2}

	cases := []struct {
		name string
		run  func(sc Scenario) (string, error)
	}{
		{"CrashSweep", func(sc Scenario) (string, error) {
			outs, err := CrashSweep(newAlg, sc, 0, nil)
			return render(outs), err
		}},
		{"StallSweepSampled", func(sc Scenario) (string, error) {
			outs, err := StallSweepSampled(newAlg, sc, []int{0, 2}, seeds, 6, nil)
			return render(outs), err
		}},
		{"RecoverySweepSampled", func(sc Scenario) (string, error) {
			outs, err := RecoverySweepSampled(newRec, sc, []int{0}, seeds, 6, 1, nil)
			return renderPtrs(outs), err
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain := base
			plain.Parallel = 1
			want, err := tc.run(plain)
			if err != nil {
				t.Fatalf("plain serial run: %v", err)
			}
			if want == "" {
				t.Fatal("plain run produced no outcomes; the case is vacuous")
			}

			for _, workers := range determinismWorkerCounts() {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					dir := t.TempDir()

					// Uninterrupted checkpointed run: the sink must not
					// perturb results.
					st, err := checkpoint.Open(filepath.Join(dir, "full.json"), false)
					if err != nil {
						t.Fatal(err)
					}
					sc := base
					sc.Parallel = workers
					sc.Robust = &RobustOptions{Store: st}
					got, err := tc.run(sc)
					if err != nil {
						t.Fatalf("checkpointed run: %v", err)
					}
					if got != want {
						t.Error("checkpointed run diverged from the plain run")
					}

					// Interrupted run: stop after a few rows. The pool is
					// capped at 2 here so in-flight overshoot cannot finish
					// the whole (small) sampled sweeps before the stop
					// lands; the resume below still runs at full width.
					ckPath := filepath.Join(dir, "ck.json")
					st1, err := checkpoint.Open(ckPath, false)
					if err != nil {
						t.Fatal(err)
					}
					stop := parwork.NewStopper()
					scI := base
					scI.Parallel = min(workers, 2)
					scI.Robust = &RobustOptions{Store: st1, Stop: stop,
						AfterRow: func(done int) {
							if done >= 3 {
								stop.Stop()
							}
						}}
					_, err = tc.run(scI)
					var ie *parwork.InterruptedError
					if !errors.As(err, &ie) {
						t.Fatalf("interrupted run returned %v, want *parwork.InterruptedError", err)
					}
					if ie.Done == 0 || ie.Done >= ie.Total {
						t.Fatalf("interrupt left %d/%d rows done; the split is vacuous", ie.Done, ie.Total)
					}

					// Resume: restored rows + freshly computed rows must
					// merge into the byte-identical output.
					st2, err := checkpoint.Open(ckPath, true)
					if err != nil {
						t.Fatalf("reopening checkpoint: %v", err)
					}
					var computed atomic.Int64
					scR := base
					scR.Parallel = workers
					scR.Robust = &RobustOptions{Store: st2,
						AfterRow: func(done int) { computed.Store(int64(done)) }}
					got2, err := tc.run(scR)
					if err != nil {
						t.Fatalf("resumed run: %v", err)
					}
					if got2 != want {
						t.Error("resumed run diverged from the uninterrupted output")
					}
					if int(computed.Load()) != ie.Total-ie.Done {
						t.Errorf("resume computed %d rows, want exactly the %d the interrupt left",
							computed.Load(), ie.Total-ie.Done)
					}
				})
			}
		})
	}
}

// bombSched panics on its first scheduling decision, simulating a row
// whose job blows up mid-execution.
type bombSched struct{ sched.Scheduler }

func (bombSched) Next(int, []int) int { panic("injected row panic") }

// bombAfter wraps a scheduler factory: the fuse'th instance it hands out
// is a bomb. With Parallel=1 the rows consume instances in order, so the
// failing row is deterministic.
func bombAfter(fuse int) func() sched.Scheduler {
	var calls atomic.Int64
	return func() sched.Scheduler {
		s := sched.NewRoundRobin()
		if calls.Add(1) == int64(fuse) {
			return bombSched{s}
		}
		return s
	}
}

// TestSweepKeepGoingIsolatesPanickingRow is the acceptance check for
// -keep-going: an injected panicking row becomes a reported RowFailure in
// its outcome slot and the sweep completes; a later resume retries the
// failed row (it is never checkpointed) and reproduces the clean output.
func TestSweepKeepGoingIsolatesPanickingRow(t *testing.T) {
	newAlg := func() memmodel.Algorithm { return core.New(core.FLog) }
	base := Scenario{NReaders: 2, NWriters: 1, ReaderPassages: 1, WriterPassages: 1}
	base.Parallel = 1

	want, err := CrashSweep(newAlg, base, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := checkpoint.Open(filepath.Join(dir, "ck.json"), false)
	if err != nil {
		t.Fatal(err)
	}
	sc := base
	sc.Robust = &RobustOptions{Store: st, KeepGoing: true}
	outs, err := CrashSweep(newAlg, sc, 0, bombAfter(5))
	if err != nil {
		t.Fatalf("keep-going sweep aborted: %v", err)
	}
	if len(outs) != len(want) {
		t.Fatalf("keep-going sweep returned %d outcomes, want %d", len(outs), len(want))
	}
	failed := -1
	for i, o := range outs {
		var rf *parwork.RowFailure
		if errors.As(o.Err, &rf) {
			if failed != -1 {
				t.Fatalf("rows %d and %d both failed; want exactly one", failed, i)
			}
			failed = i
			if rf.Index != i {
				t.Errorf("RowFailure.Index = %d in slot %d", rf.Index, i)
			}
			if rf.PanicValue != "injected row panic" {
				t.Errorf("PanicValue = %q", rf.PanicValue)
			}
			if rf.Stack == "" {
				t.Error("RowFailure carries no stack")
			}
			if rf.Info == "" {
				t.Error("RowFailure carries no fault-point info")
			}
			if o.Point != want[i].Point {
				t.Errorf("failed slot %d lost its fault point: %v != %v", i, o.Point, want[i].Point)
			}
			continue
		}
		if o.Err != nil {
			t.Errorf("row %d: unexpected error %v", i, o.Err)
		}
		if fmt.Sprintf("%+v", o) != fmt.Sprintf("%+v", want[i]) {
			t.Errorf("healthy row %d diverged from the clean sweep", i)
		}
	}
	if failed == -1 {
		t.Fatal("the injected panic produced no RowFailure")
	}

	// Resume with a healthy scheduler factory: only the failed row is
	// recomputed, and the output now matches the clean sweep everywhere.
	st2, err := checkpoint.Open(filepath.Join(dir, "ck.json"), true)
	if err != nil {
		t.Fatal(err)
	}
	var computed atomic.Int64
	scR := base
	scR.Robust = &RobustOptions{Store: st2,
		AfterRow: func(done int) { computed.Store(int64(done)) }}
	outs2, err := CrashSweep(newAlg, scR, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if computed.Load() != 1 {
		t.Errorf("resume recomputed %d rows, want just the failed one", computed.Load())
	}
	if render(outs2) != render(want) {
		t.Error("resumed sweep diverged from the clean sweep")
	}
}

// TestSweepCheckpointMismatchRejected: resuming under a changed
// configuration must fail with the typed mismatch error, never silently
// merge stale rows.
func TestSweepCheckpointMismatchRejected(t *testing.T) {
	newAlg := func() memmodel.Algorithm { return core.New(core.FLog) }
	base := Scenario{NReaders: 2, NWriters: 1, ReaderPassages: 1, WriterPassages: 1, Parallel: 1}
	seeds := []int64{1, 2}

	t.Run("changed scenario", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "ck.json")
		st, _ := checkpoint.Open(path, false)
		sc := base
		sc.Robust = &RobustOptions{Store: st}
		if _, err := CrashSweep(newAlg, sc, 0, nil); err != nil {
			t.Fatal(err)
		}
		st2, err := checkpoint.Open(path, true)
		if err != nil {
			t.Fatal(err)
		}
		changed := base
		changed.CSReads = 2
		changed.Robust = &RobustOptions{Store: st2}
		_, err = CrashSweep(newAlg, changed, 0, nil)
		var mm *checkpoint.MismatchError
		if !errors.As(err, &mm) {
			t.Fatalf("changed scenario resumed with err = %v, want *checkpoint.MismatchError", err)
		}
	})

	t.Run("changed seed set", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "ck.json")
		st, _ := checkpoint.Open(path, false)
		sc := base
		sc.Robust = &RobustOptions{Store: st}
		if _, err := StallSweepSampled(newAlg, sc, []int{0}, seeds, 3, nil); err != nil {
			t.Fatal(err)
		}
		st2, err := checkpoint.Open(path, true)
		if err != nil {
			t.Fatal(err)
		}
		sc2 := base
		sc2.Robust = &RobustOptions{Store: st2}
		_, err = StallSweepSampled(newAlg, sc2, []int{0}, []int64{1, 3}, 3, nil)
		var mm *checkpoint.MismatchError
		if !errors.As(err, &mm) {
			t.Fatalf("changed seeds resumed with err = %v, want *checkpoint.MismatchError", err)
		}
	})
}

// TestWireRenderFidelity: every outcome produced by the real sweeps must
// survive its JSON wire format with an identical %+v rendering — the
// property resume determinism rests on. Error fields and the
// RecoverOutcome Scenario (live scheduler) are the nontrivial parts.
func TestWireRenderFidelity(t *testing.T) {
	newAlg := func() memmodel.Algorithm { return core.New(core.FLog) }
	newRec := func() memmodel.RecoverableAlgorithm { return recoverable.NewCentralized() }
	sc := Scenario{NReaders: 2, NWriters: 1, ReaderPassages: 1, WriterPassages: 1, Parallel: 1}

	roundTrip := func(t *testing.T, in, out any) {
		t.Helper()
		p, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if err := json.Unmarshal(p, out); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
	}

	t.Run("CrashOutcome", func(t *testing.T) {
		outs, err := CrashSweep(newAlg, sc, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Append a synthetic errored outcome so the Err path is covered
		// even when the sweep produces none.
		outs = append(outs, CrashOutcome{Algorithm: "x",
			Err: fmt.Errorf("wrapped: %w", errors.New("inner"))})
		for i, o := range outs {
			var back CrashOutcome
			roundTrip(t, o, &back)
			if fmt.Sprintf("%+v", o) != fmt.Sprintf("%+v", back) {
				t.Fatalf("outcome %d changed rendering across the wire:\n %+v\nvs\n %+v", i, o, back)
			}
		}
	})

	t.Run("StallOutcome", func(t *testing.T) {
		outs, err := StallSweep(newAlg, sc, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range outs {
			var back StallOutcome
			roundTrip(t, o, &back)
			if fmt.Sprintf("%+v", o) != fmt.Sprintf("%+v", back) {
				t.Fatalf("outcome %d changed rendering across the wire:\n %+v\nvs\n %+v", i, o, back)
			}
		}
	})

	t.Run("RecoverOutcome", func(t *testing.T) {
		outs, err := RecoverySweep(newRec, sc, 0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range outs {
			var back RecoverOutcome
			roundTrip(t, o, &back)
			if fmt.Sprintf("%+v", *o) != fmt.Sprintf("%+v", back) {
				t.Fatalf("outcome %d changed rendering across the wire:\n %+v\nvs\n %+v", i, *o, back)
			}
		}
	})
}
