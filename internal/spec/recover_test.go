package spec

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/memmodel"
	"repro/internal/recoverable"
	"repro/internal/sched"
)

func newRCentralized() memmodel.RecoverableAlgorithm { return recoverable.NewCentralized() }
func newRAF() memmodel.RecoverableAlgorithm          { return recoverable.NewAF(core.FLog) }

func recoverScenario(nR, nW int) Scenario {
	return Scenario{NReaders: nR, NWriters: nW, ReaderPassages: 2, WriterPassages: 2, CSReads: 1}
}

func requireAllOK(t *testing.T, outs []*RecoverOutcome) {
	t.Helper()
	if len(outs) == 0 {
		t.Fatal("empty sweep")
	}
	for _, o := range outs {
		if !o.OK() {
			t.Errorf("%s %v: %s", o.Algorithm, o.Points, o.Failures())
		}
	}
}

// TestRunCrashRecoverNoPoints: the harness without crashes is just a
// passage-quota run; verdict and event lists stay empty.
func TestRunCrashRecoverNoPoints(t *testing.T) {
	out := RunCrashRecover(newRCentralized(), recoverScenario(2, 1), nil)
	if !out.OK() {
		t.Fatalf("crash-free run failed: %s", out.Failures())
	}
	if out.Crashes != 0 || out.Restarts != 0 || len(out.Recoveries) != 0 {
		t.Errorf("crash-free run reports crashes=%d restarts=%d recoveries=%v",
			out.Crashes, out.Restarts, out.Recoveries)
	}
	if out.RecoveryRMR != 0 || out.RecoverySteps != 0 {
		t.Errorf("crash-free run billed recovery cost: %d RMR, %d steps",
			out.RecoveryRMR, out.RecoverySteps)
	}
}

// TestRecoverySweepCentralized is the exhaustive single-crash gate on the
// recoverable centralized lock, both victim classes, delay 0 and nonzero.
func TestRecoverySweepCentralized(t *testing.T) {
	sc := recoverScenario(2, 1)
	for _, victim := range []int{0, 2} { // reader r0, writer w0
		for _, delay := range []int{0, 3} {
			outs, err := RecoverySweep(newRCentralized, sc, victim, delay, nil)
			if err != nil {
				t.Fatalf("victim=%d delay=%d: %v", victim, delay, err)
			}
			requireAllOK(t, outs)
		}
	}
}

// TestRecoverySweepFast is the configuration CI runs under -race: one
// exhaustive centralized sweep plus a recrash batch, small populations.
func TestRecoverySweepFast(t *testing.T) {
	outs, err := RecoverySweep(newRCentralized, recoverScenario(2, 1), 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireAllOK(t, outs)
	recrash, err := RecoverySweepRecrash(newRCentralized, recoverScenario(2, 1), 2, 4, []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireAllOK(t, recrash)
}

// TestRecoverySweepRecrashHitsRecovery: the double-crash sweep must
// include configurations whose second crash lands inside the recovery
// section, and all of them must stay safe and live.
func TestRecoverySweepRecrashHitsRecovery(t *testing.T) {
	outs, err := RecoverySweepRecrash(newRCentralized, recoverScenario(2, 2), 2, 1, []int{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireAllOK(t, outs)
	inRecovery := 0
	for _, o := range outs {
		if o.CrashedInRecovery() {
			inRecovery++
		}
	}
	if inRecovery == 0 {
		t.Error("no configuration crashed the recovery section itself")
	}
}

// TestRecoverySweepSampledAF: seeded sampled sweep over the recoverable
// A_f, both victim classes drawn at random.
func TestRecoverySweepSampledAF(t *testing.T) {
	sc := recoverScenario(3, 2)
	outs, err := RecoverySweepSampled(newRAF, sc, []int{0, 1, 3, 4}, []int64{1, 2}, 6, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireAllOK(t, outs)
}

// TestRecoverySweepRejectsBrokenReference: a scenario the algorithm cannot
// complete (population over the word-layout cap) surfaces as a reference
// failure, not a silent empty sweep.
func TestRecoverySweepRejectsBrokenReference(t *testing.T) {
	if _, err := RecoverySweep(newRCentralized, recoverScenario(49, 1), 0, 0, nil); err == nil {
		t.Error("reference failure not reported")
	}
}

// TestRecoveryRMRMeasured: a crash inside the entry section forces a
// nontrivial recovery section whose RMR cost lands in RecoveryRMR.
func TestRecoveryRMRMeasured(t *testing.T) {
	sc := recoverScenario(2, 1)
	outs, err := RecoverySweep(newRCentralized, sc, 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	billed := 0
	for _, o := range outs {
		if o.Crashes > 0 && o.RecoveryRMR > 0 {
			billed++
		}
	}
	if billed == 0 {
		t.Error("no sweep configuration billed recovery-section RMRs")
	}
}

// TestRecoverOutcomeVerdictCoverage: across the exhaustive sweep all three
// recovery verdicts must occur (abort for pre-registration crashes, CS for
// in-lock crashes, done for mid-exit crashes).
func TestRecoverOutcomeVerdictCoverage(t *testing.T) {
	seen := make(map[memmodel.Recovery]int)
	for _, victim := range []int{0, 2} {
		outs, err := RecoverySweep(newRCentralized, recoverScenario(2, 1), victim, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			for _, rec := range o.Recoveries {
				seen[rec]++
			}
		}
	}
	for _, rec := range []memmodel.Recovery{memmodel.RecoverAbort, memmodel.RecoverCS, memmodel.RecoverDone} {
		if seen[rec] == 0 {
			t.Errorf("verdict %v never observed (got %v)", rec, seen)
		}
	}
}

// TestCrashSweepSampledDeduplicates pins the duplicate-point fix: with a
// tiny step range and many draws per seed, the pigeonhole principle forces
// duplicates, and the sweep must run strictly fewer executions than draws.
func TestCrashSweepSampledDeduplicates(t *testing.T) {
	sc := Scenario{NReaders: 1, NWriters: 1, ReaderPassages: 1, WriterPassages: 1}
	newAlg := func() memmodel.Algorithm { return recoverable.NewCentralized() }
	outs, err := CrashSweepSampled(newAlg, sc, []int{0}, []int64{42}, 50, func(seed int64) sched.Scheduler {
		return sched.NewRoundRobin()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) >= 50 {
		t.Fatalf("sweep ran %d executions for 50 draws over a tiny range; dedup not applied", len(outs))
	}
	seen := make(map[fault.Point]bool)
	for _, o := range outs {
		if seen[o.Point] {
			t.Errorf("duplicate point %v survived dedup", o.Point)
		}
		seen[o.Point] = true
	}
	// Determinism: the same seed yields the same deduplicated point list.
	again, err := CrashSweepSampled(newAlg, sc, []int{0}, []int64{42}, 50, func(seed int64) sched.Scheduler {
		return sched.NewRoundRobin()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(outs) {
		t.Fatalf("re-run produced %d points, first run %d", len(again), len(outs))
	}
	for i := range outs {
		if outs[i].Point != again[i].Point {
			t.Errorf("point %d differs across runs: %v vs %v", i, outs[i].Point, again[i].Point)
		}
	}
}
