package spec

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/parwork"
	"repro/internal/recoverable"
)

// determinismWorkerCounts returns the worker counts the gate compares:
// serial, the smallest genuinely parallel pool, and the machine's full
// width (deduplicated, so the gate is meaningful on 1- and 2-core hosts
// too).
func determinismWorkerCounts() []int {
	counts := []int{1, 2, runtime.NumCPU()}
	seen := map[int]bool{}
	out := counts[:0]
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// render flattens a sweep's results into one comparable string. Pointer
// elements are dereferenced so the fingerprint covers values, not
// addresses.
func render[T any](outs []T) string {
	var b strings.Builder
	for i, o := range outs {
		fmt.Fprintf(&b, "%d: %+v\n", i, o)
	}
	return b.String()
}

func renderPtrs[T any](outs []*T) string {
	var b strings.Builder
	for i, o := range outs {
		fmt.Fprintf(&b, "%d: %+v\n", i, *o)
	}
	return b.String()
}

// TestSweepDeterminism is the determinism gate for the parallel sweep
// engine: every parallelized sweep entry point must return byte-identical
// results at every worker count. Run under -race in CI, it also shakes out
// data races between sweep workers.
func TestSweepDeterminism(t *testing.T) {
	newAlg := func() memmodel.Algorithm { return core.New(core.FLog) }
	newRec := func() memmodel.RecoverableAlgorithm { return recoverable.NewCentralized() }
	sc := Scenario{NReaders: 2, NWriters: 2, ReaderPassages: 2, WriterPassages: 2, CSReads: 1}
	seeds := []int64{1, 2}

	cases := []struct {
		name string
		run  func(sc Scenario) (string, error)
	}{
		{"CrashSweep", func(sc Scenario) (string, error) {
			outs, err := CrashSweep(newAlg, sc, 0, nil)
			return render(outs), err
		}},
		{"CrashSweepSampled", func(sc Scenario) (string, error) {
			outs, err := CrashSweepSampled(newAlg, sc, []int{0, 2}, seeds, 4, nil)
			return render(outs), err
		}},
		{"StallSweep", func(sc Scenario) (string, error) {
			outs, err := StallSweep(newAlg, sc, 0, nil)
			return render(outs), err
		}},
		{"StallSweepSampled", func(sc Scenario) (string, error) {
			outs, err := StallSweepSampled(newAlg, sc, []int{0, 2}, seeds, 4, nil)
			return render(outs), err
		}},
		{"MixedSweepSampled", func(sc Scenario) (string, error) {
			outs, err := MixedSweepSampled(newAlg, sc, []int{0, 1}, []int{2, 3}, seeds, 4, nil)
			return render(outs), err
		}},
		{"RecoverySweep", func(sc Scenario) (string, error) {
			outs, err := RecoverySweep(newRec, sc, 0, 0, nil)
			return renderPtrs(outs), err
		}},
		{"RecoverySweepRecrash", func(sc Scenario) (string, error) {
			outs, err := RecoverySweepRecrash(newRec, sc, 0, 3, []int{1, 2}, nil)
			return renderPtrs(outs), err
		}},
		{"RecoverySweepSampled", func(sc Scenario) (string, error) {
			outs, err := RecoverySweepSampled(newRec, sc, []int{0}, seeds, 4, 1, nil)
			return renderPtrs(outs), err
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := sc
			serial.Parallel = 1
			want, err := tc.run(serial)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			if want == "" {
				t.Fatal("serial run produced no outcomes; the case is vacuous")
			}
			// Both stealing modes: with stealing, workers share the ragged
			// tail of the cost-seeded deques; without, each drains only its
			// own. The sweeps' cost hints change the schedule in both modes
			// and must never change the bytes.
			for _, stealing := range []bool{true, false} {
				prev := parwork.StealingEnabled()
				parwork.SetStealing(stealing)
				for _, workers := range determinismWorkerCounts()[1:] {
					par := sc
					par.Parallel = workers
					got, err := tc.run(par)
					if err != nil {
						parwork.SetStealing(prev)
						t.Fatalf("parallel=%d stealing=%v run: %v", workers, stealing, err)
					}
					if got != want {
						t.Errorf("parallel=%d stealing=%v diverged from serial output", workers, stealing)
					}
				}
				parwork.SetStealing(prev)
			}
		})
	}
}
