package spec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/sched"
	"repro/internal/sim"
)

// TestRandomScenariosProperty is the property-based sweep: for random
// small populations, passage counts, parameterizations, protocols and
// scheduler seeds, every algorithm satisfies mutual exclusion and
// completes. Each quick iteration runs one randomized scenario.
func TestRandomScenariosProperty(t *testing.T) {
	factories := []func() memmodel.Algorithm{
		func() memmodel.Algorithm { return core.New(core.FOne) },
		func() memmodel.Algorithm { return core.New(core.FLog) },
		func() memmodel.Algorithm { return core.New(core.FSqrt) },
		func() memmodel.Algorithm { return core.New(core.FHalf) },
		func() memmodel.Algorithm { return core.New(core.FLinear) },
		func() memmodel.Algorithm { return baseline.NewCentralized() },
		func() memmodel.Algorithm { return baseline.NewFlagArray() },
		func() memmodel.Algorithm { return baseline.NewPhaseFair() },
		func() memmodel.Algorithm { return baseline.NewMutexRW() },
	}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alg := factories[rng.Intn(len(factories))]()
		protocol := sim.WriteThrough
		if rng.Intn(2) == 1 {
			protocol = sim.WriteBack
		}
		var scheduler sched.Scheduler
		switch rng.Intn(3) {
		case 0:
			scheduler = sched.NewRandom(rng.Int63())
		case 1:
			scheduler = sched.NewPCT(rng.Int63(), 1+rng.Intn(6), 20_000)
		default:
			scheduler = sched.NewRoundRobin()
		}
		rep := Run(alg, Scenario{
			NReaders:       1 + rng.Intn(6),
			NWriters:       1 + rng.Intn(3),
			ReaderPassages: 1 + rng.Intn(3),
			WriterPassages: 1 + rng.Intn(3),
			CSReads:        rng.Intn(3),
			Protocol:       protocol,
			Scheduler:      scheduler,
		})
		if !rep.OK() {
			t.Logf("scenario failed: %s %s\n%s", alg.Name(), rep.Scenario, rep.Failures())
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
