// Package spec checks reader-writer lock algorithms against the properties
// the paper requires (Section 2.1): Mutual Exclusion, Bounded Exit,
// Deadlock Freedom and Concurrent Entering, plus reader non-starvation
// (Lemma 16). It runs an algorithm inside the CC simulator under a chosen
// scheduler and validates the resulting execution.
//
// Process numbering convention: readers are processes 0..n-1, writers are
// processes n..n+m-1. Experiments elsewhere in the repository follow the
// same convention.
package spec

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/parwork"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scenario describes one checked execution.
type Scenario struct {
	// NReaders and NWriters size the population.
	NReaders, NWriters int
	// ReaderPassages and WriterPassages are the number of passages each
	// reader (resp. writer) performs. Zero means the processes exist but
	// stay in the remainder section.
	ReaderPassages, WriterPassages int
	// Protocol is the coherence protocol (default write-through).
	Protocol sim.Protocol
	// Scheduler drives the interleaving (default round-robin).
	Scheduler sched.Scheduler
	// MaxSteps bounds the execution (default 2,000,000). Exceeding it is
	// reported as a progress failure: with finite passages a live
	// algorithm must terminate.
	MaxSteps int
	// CSReads adds that many reads of a scratch variable inside each
	// critical section, lengthening CS occupancy to expose races.
	CSReads int
	// Observer, if non-nil, additionally receives every trace event (the
	// harness always installs its own mutual-exclusion monitor). Sweeps
	// with a non-nil Observer always run serially: a shared observer
	// closure would otherwise be invoked concurrently from worker
	// goroutines.
	Observer func(trace.Event)
	// Parallel is the worker count the sweep entry points (CrashSweep,
	// StallSweep, RecoverySweep, and their sampled variants) fan their
	// independent executions across. 0 selects the process default
	// (parwork.Default, typically GOMAXPROCS; the cmd binaries set it from
	// -parallel); 1 forces serial execution. Results are byte-identical at
	// every worker count — see internal/parwork. Single executions (Run,
	// RunCrash, ...) ignore it.
	Parallel int
	// Robust selects the sweep entry points' robust execution options
	// (checkpointing, cooperative cancellation, per-row failure
	// isolation, row deadline — see RobustOptions). nil selects the
	// process default (SetDefaultRobust, set by the cmd binaries'
	// -checkpoint/-resume/-keep-going/-row-timeout flags); a non-nil
	// zero-valued struct opts OUT of that default, forcing the plain
	// fast path. Single executions ignore it. Like Parallel it never
	// affects results: a resumed or keep-going sweep fills the same
	// result slots with the same values (failed rows excepted).
	Robust *RobustOptions
}

func (s Scenario) String() string {
	scheduler := "round-robin"
	if s.Scheduler != nil {
		scheduler = s.Scheduler.Name()
	}
	return fmt.Sprintf("n=%d m=%d rp=%d wp=%d %s %s",
		s.NReaders, s.NWriters, s.ReaderPassages, s.WriterPassages, s.Protocol, scheduler)
}

// Report is the outcome of one checked execution.
type Report struct {
	// Algorithm is the algorithm's name.
	Algorithm string
	// Scenario echoes the input.
	Scenario Scenario
	// Violations lists every property violation observed; empty means the
	// execution satisfied Mutual Exclusion and completed all passages.
	Violations []string
	// Err is the runner's terminal error, if any (deadlock, step budget).
	Err error
	// Steps is the total number of shared-memory steps executed.
	Steps int
	// ReaderAccounts and WriterAccounts hold per-process cost accounts,
	// indexed by rid / wid.
	ReaderAccounts []*sim.Account
	WriterAccounts []*sim.Account
	// MaxReaderPassage and MaxWriterPassage aggregate worst-case
	// per-passage costs across all processes of the class.
	MaxReaderPassage, MaxWriterPassage sim.Passage
	// MaxConcurrentReaders is the largest number of readers observed in
	// the CS simultaneously (evidence of actual reader parallelism).
	MaxConcurrentReaders int
	// VarNames maps variable ids to the debug names the algorithm
	// allocated them with (for rendering traces).
	VarNames []string
}

// OK reports whether the execution completed without violations or errors.
func (r *Report) OK() bool { return len(r.Violations) == 0 && r.Err == nil }

// Failures renders all problems as one string.
func (r *Report) Failures() string {
	s := ""
	for _, v := range r.Violations {
		s += v + "\n"
	}
	if r.Err != nil {
		s += r.Err.Error() + "\n"
	}
	return s
}

// csMonitor watches section-transition events and enforces Mutual
// Exclusion: a writer in the CS excludes everyone.
type csMonitor struct {
	nReaders   int
	inCS       []bool // proc id -> in CS, grown on demand
	writersIn  int
	readersIn  int
	maxReaders int
	violations []string
}

func newCSMonitor(nReaders int) *csMonitor {
	return &csMonitor{nReaders: nReaders}
}

func (m *csMonitor) isWriter(proc int) bool { return proc >= m.nReaders }

func (m *csMonitor) observe(e trace.Event) {
	if !e.SectionChange {
		return
	}
	for len(m.inCS) <= e.Proc {
		m.inCS = append(m.inCS, false)
	}
	was := m.inCS[e.Proc]
	now := e.Section == memmodel.SecCS
	if was == now {
		return
	}
	m.inCS[e.Proc] = now
	if m.isWriter(e.Proc) {
		if now {
			m.writersIn++
			if m.writersIn > 1 || m.readersIn > 0 {
				m.violations = append(m.violations, fmt.Sprintf(
					"step %d: writer w%d entered CS with %d writers and %d readers inside",
					e.Step, e.Proc-m.nReaders, m.writersIn-1, m.readersIn))
			}
		} else {
			m.writersIn--
		}
		return
	}
	if now {
		m.readersIn++
		if m.writersIn > 0 {
			m.violations = append(m.violations, fmt.Sprintf(
				"step %d: reader r%d entered CS while a writer was inside", e.Step, e.Proc))
		}
		if m.readersIn > m.maxReaders {
			m.maxReaders = m.readersIn
		}
	} else {
		m.readersIn--
	}
}

// defaults fills the zero-value scenario fields in place.
func (s *Scenario) defaults() {
	if s.MaxSteps == 0 {
		s.MaxSteps = 2_000_000
	}
	if s.Scheduler == nil {
		s.Scheduler = sched.NewRoundRobin()
	}
	if s.Protocol == 0 {
		s.Protocol = sim.WriteThrough
	}
}

// sweepWorkers resolves the worker count a sweep over sc fans out across:
// the Parallel field (parwork-normalized), forced to 1 when the scenario
// carries a shared user Observer, which must not be invoked concurrently.
func sweepWorkers(sc Scenario) int {
	if sc.Observer != nil {
		return 1
	}
	return parwork.Workers(sc.Parallel)
}

// runnerCache lends one sim.Runner out to consecutive executions on the
// same goroutine: the first get constructs it, later gets Reset it,
// reusing the simulator's memory/coherence/account buffers. Each sweep
// worker owns one cache (parwork.DoScoped), so runners are never shared.
type runnerCache struct{ r *sim.Runner }

func (c *runnerCache) get(cfg sim.Config) *sim.Runner {
	if c.r == nil {
		c.r = sim.New(cfg)
	} else {
		c.r.Reset(cfg)
	}
	return c.r
}

func (c *runnerCache) close() {
	if c.r != nil {
		c.r.Close()
	}
}

// buildRunner wires alg and the scenario's passage-driving programs into a
// started runner drawn from c, with mon installed as the mutual-exclusion
// monitor. The cache owns Close; a runner is never closed between cached
// executions (Reset does it).
func buildRunner(c *runnerCache, alg memmodel.Algorithm, sc Scenario, mon *csMonitor) (*sim.Runner, error) {
	observe := mon.observe
	if sc.Observer != nil {
		user := sc.Observer
		observe = func(e trace.Event) {
			mon.observe(e)
			user(e)
		}
	}
	r := c.get(sim.Config{
		Protocol:  sc.Protocol,
		Scheduler: sc.Scheduler,
		MaxSteps:  sc.MaxSteps,
		Observer:  observe,
	})

	if err := alg.Init(r, sc.NReaders, sc.NWriters); err != nil {
		return nil, fmt.Errorf("init: %w", err)
	}
	scratch := r.Alloc("spec.scratch", 0)

	for rid := 0; rid < sc.NReaders; rid++ {
		rid := rid
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < sc.ReaderPassages; i++ {
				p.Section(memmodel.SecEntry)
				alg.ReaderEnter(p, rid)
				p.Section(memmodel.SecCS)
				for k := 0; k < sc.CSReads; k++ {
					p.Read(scratch)
				}
				p.Section(memmodel.SecExit)
				alg.ReaderExit(p, rid)
				p.Section(memmodel.SecRemainder)
			}
		})
	}
	for wid := 0; wid < sc.NWriters; wid++ {
		wid := wid
		r.AddProc(func(p sim.Proc) {
			for i := 0; i < sc.WriterPassages; i++ {
				p.Section(memmodel.SecEntry)
				alg.WriterEnter(p, wid)
				p.Section(memmodel.SecCS)
				for k := 0; k < sc.CSReads; k++ {
					p.Read(scratch)
				}
				p.Section(memmodel.SecExit)
				alg.WriterExit(p, wid)
				p.Section(memmodel.SecRemainder)
			}
		})
	}

	if err := r.Start(); err != nil {
		return nil, err
	}
	return r, nil
}

// Run executes the scenario against alg and returns the report. The
// algorithm instance must be fresh (Init not yet called).
func Run(alg memmodel.Algorithm, sc Scenario) *Report {
	var c runnerCache
	defer c.close()
	return runOn(&c, alg, sc)
}

// runOn is Run on a cached runner.
func runOn(c *runnerCache, alg memmodel.Algorithm, sc Scenario) *Report {
	sc.defaults()
	rep := &Report{Algorithm: alg.Name(), Scenario: sc}
	mon := newCSMonitor(sc.NReaders)

	r, err := buildRunner(c, alg, sc, mon)
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Err = r.Run()
	rep.Steps = r.StepCount()
	rep.Violations = mon.violations
	rep.MaxConcurrentReaders = mon.maxReaders
	rep.VarNames = make([]string, r.NumVars())
	for v := range rep.VarNames {
		rep.VarNames[v] = r.VarName(memmodel.Var(v))
	}

	for rid := 0; rid < sc.NReaders; rid++ {
		acct := r.Account(rid)
		rep.ReaderAccounts = append(rep.ReaderAccounts, acct)
		if rep.Err == nil && len(acct.Passages) != sc.ReaderPassages {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"reader r%d completed %d/%d passages", rid, len(acct.Passages), sc.ReaderPassages))
		}
		rep.MaxReaderPassage = maxPassage(rep.MaxReaderPassage, acct.MaxPassage())
	}
	for wid := 0; wid < sc.NWriters; wid++ {
		acct := r.Account(sc.NReaders + wid)
		rep.WriterAccounts = append(rep.WriterAccounts, acct)
		if rep.Err == nil && len(acct.Passages) != sc.WriterPassages {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"writer w%d completed %d/%d passages", wid, len(acct.Passages), sc.WriterPassages))
		}
		rep.MaxWriterPassage = maxPassage(rep.MaxWriterPassage, acct.MaxPassage())
	}
	return rep
}

func maxPassage(a, b sim.Passage) sim.Passage {
	return sim.Passage{
		EntryRMR:   max(a.EntryRMR, b.EntryRMR),
		CSRMR:      max(a.CSRMR, b.CSRMR),
		ExitRMR:    max(a.ExitRMR, b.ExitRMR),
		EntrySteps: max(a.EntrySteps, b.EntrySteps),
		CSSteps:    max(a.CSSteps, b.CSSteps),
		ExitSteps:  max(a.ExitSteps, b.ExitSteps),
	}
}
