// Crash-safety property: under the crash-stop failure model (see
// internal/fault), killing one process at an arbitrary step boundary must
// never let a survivor violate Mutual Exclusion. Survivor progress is the
// diagnostic output, not a pass/fail axis — none of the paper's algorithms
// are recoverable, so a crash inside a lock-holding or signaling window is
// expected to wedge later passages. The sweep records exactly where that
// happens, and the watchdog guarantees each hang is detected as a
// deterministic no-progress event rather than a step-budget timeout.
package spec

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/memmodel"
	"repro/internal/parwork"
	"repro/internal/sched"
	"repro/internal/sim"
)

// CrashOutcome is the result of one execution with one injected crash.
type CrashOutcome struct {
	// Algorithm is the algorithm's name.
	Algorithm string
	// Point is the injected crash point.
	Point fault.Point
	// VictimIsWriter classifies the victim under the spec numbering
	// (readers 0..n-1, writers n..n+m-1).
	VictimIsWriter bool
	// Crashed reports whether the crash was actually applied; false means
	// the victim finished its program before the crash step arrived (a
	// moot point, equivalent to a remainder-section crash).
	Crashed bool
	// CrashSection is the passage section the victim occupied when it
	// crashed (SecRemainder for moot points: finished processes have
	// returned to the remainder section).
	CrashSection memmodel.Section
	// MEViolations lists Mutual Exclusion violations observed by the
	// monitor over the whole execution. Must always be empty: a crash can
	// remove steps from the execution but never add or reorder them.
	MEViolations []string
	// Hung reports whether the watchdog detected global non-progress.
	Hung bool
	// Stuck is the watchdog's diagnostic when Hung (who is blocked, on
	// which variables, holding which stale values).
	Stuck []sim.StuckProc
	// BudgetExceeded reports that the run hit the step budget instead of
	// terminating or being caught by the watchdog. Because every wait in
	// the simulated algorithms is a local-spin Await, this must never
	// happen: it would mean a hang escaped deterministic detection.
	BudgetExceeded bool
	// Err holds any other execution error (setup failure etc).
	Err error
}

// Live reports whether every surviving process completed all its passages.
func (o CrashOutcome) Live() bool {
	return !o.Hung && !o.BudgetExceeded && o.Err == nil
}

// Safe reports whether the execution preserved Mutual Exclusion.
func (o CrashOutcome) Safe() bool { return len(o.MEViolations) == 0 }

// RunCrash executes the scenario against a fresh alg, crashing pt.Victim at
// step boundary pt.Step, and classifies the outcome.
func RunCrash(alg memmodel.Algorithm, sc Scenario, pt fault.Point) CrashOutcome {
	var c runnerCache
	defer c.close()
	return runCrashOn(&c, alg, sc, pt)
}

// runCrashOn is RunCrash on a cached runner.
func runCrashOn(c *runnerCache, alg memmodel.Algorithm, sc Scenario, pt fault.Point) CrashOutcome {
	sc.defaults()
	out := CrashOutcome{
		Algorithm:      alg.Name(),
		Point:          pt,
		VictimIsWriter: pt.Victim >= sc.NReaders,
		CrashSection:   memmodel.SecRemainder,
	}
	mon := newCSMonitor(sc.NReaders)
	r, err := buildRunner(c, alg, sc, mon)
	if err != nil {
		out.Err = err
		return out
	}

	err = fault.Drive(r, []fault.Point{pt})
	out.Crashed = len(r.Crashed()) > 0
	if pt.Victim >= 0 && pt.Victim < sc.NReaders+sc.NWriters {
		// A finished victim has transitioned back to SecRemainder, so the
		// account's last section is the crash section in both cases.
		out.CrashSection = r.Account(pt.Victim).Section()
	}
	out.MEViolations = mon.violations

	var np *sim.NoProgressError
	switch {
	case err == nil:
	case errors.As(err, &np):
		out.Hung = true
		out.Stuck = np.Stuck
	case errors.Is(err, sim.ErrMaxSteps):
		out.BudgetExceeded = true
	default:
		out.Err = err
	}
	return out
}

// CrashSweep runs the scenario once crash-free to learn its length, then
// re-executes it from scratch for every crash point of the victim
// (fault.ExhaustivePoints over the reference step count). newAlg must
// return fresh instances and mkSched fresh scheduler state per run, since
// both are single-use; a nil mkSched selects round-robin. The Scheduler
// field of sc is ignored in favor of mkSched. The crash runs fan out
// across sc.Parallel workers (see Scenario.Parallel) with byte-identical
// results at every worker count; with Parallel != 1, newAlg and mkSched
// are called concurrently and must be safe for that (pure constructors
// are).
func CrashSweep(newAlg func() memmodel.Algorithm, sc Scenario, victim int, mkSched func() sched.Scheduler) ([]CrashOutcome, error) {
	if mkSched == nil {
		mkSched = func() sched.Scheduler { return sched.NewRoundRobin() }
	}
	ref := sc
	ref.Scheduler = mkSched()
	rep := Run(newAlg(), ref)
	if !rep.OK() {
		return nil, fmt.Errorf("crash sweep: reference run of %s failed: %s", rep.Algorithm, rep.Failures())
	}
	pts := fault.ExhaustivePoints(victim, rep.Steps)
	return robustDo(sc, "crash", rep.Algorithm,
		[]string{"crash", rep.Algorithm, fpScenario(sc), mkSched().Name(),
			fmt.Sprintf("victim=%d refsteps=%d", victim, rep.Steps)},
		len(pts),
		// Known row shape: a crash at step k replays the k-step prefix
		// and then runs the survivors out (bounded by the reference
		// length), so later crash points cost more.
		func(i int) int64 { return int64(rep.Steps + pts[i].Step) },
		func(i int) string { return pts[i].String() },
		func(c *runnerCache, i int) CrashOutcome {
			run := sc
			run.Scheduler = mkSched()
			return runCrashOn(c, newAlg(), run, pts[i])
		},
		func(i int, f *parwork.RowFailure) CrashOutcome {
			return CrashOutcome{Algorithm: rep.Algorithm, Point: pts[i],
				VictimIsWriter: pts[i].Victim >= sc.NReaders,
				CrashSection:   memmodel.SecRemainder, Err: f}
		})
}

// CrashSweepSampled samples crash points under seed-parameterized
// schedules — one reference run plus perSeed crash runs per seed, with the
// crash point drawn uniformly over victims and the reference execution's
// step range. mkSched builds the scheduler for a seed; nil selects
// sched.NewRandom. Use sched.NewPCT-based factories for
// probabilistic-concurrency-testing sweeps. Both phases — the per-seed
// reference runs and the flattened (seed, point) crash runs — fan out
// across sc.Parallel workers; see CrashSweep for the concurrency
// requirements on newAlg and mkSched.
func CrashSweepSampled(newAlg func() memmodel.Algorithm, sc Scenario, victims []int, seeds []int64, perSeed int, mkSched func(seed int64) sched.Scheduler) ([]CrashOutcome, error) {
	if mkSched == nil {
		mkSched = func(seed int64) sched.Scheduler { return sched.NewRandom(seed) }
	}
	workers := sweepWorkers(sc)
	type job struct {
		seed int64
		pt   fault.Point
		ref  int // the seed's reference step count, the row's cost scale
	}
	type seedJobs struct {
		jobs     []job
		refSteps int
	}
	perSeedJobs, err := parwork.DoErr(workers, len(seeds), func(i int) (seedJobs, error) {
		seed := seeds[i]
		ref := sc
		ref.Scheduler = mkSched(seed)
		rep := Run(newAlg(), ref)
		if !rep.OK() {
			return seedJobs{}, fmt.Errorf("crash sweep: reference run of %s (seed %d) failed: %s",
				rep.Algorithm, seed, rep.Failures())
		}
		pts := dedupPoints(fault.RandomPoints(seed, victims, rep.Steps+1, perSeed))
		jobs := make([]job, len(pts))
		for k, pt := range pts {
			jobs[k] = job{seed: seed, pt: pt, ref: rep.Steps}
		}
		return seedJobs{jobs: jobs, refSteps: rep.Steps}, nil
	})
	if err != nil {
		return nil, err
	}
	jobs := make([]job, 0, len(seeds)*perSeed)
	refSteps := make([]int, 0, len(seeds))
	for _, sj := range perSeedJobs {
		jobs = append(jobs, sj.jobs...)
		refSteps = append(refSteps, sj.refSteps)
	}
	// The per-seed reference step counts pin the sampled job list exactly
	// (the points are a pure function of seed, victims, perSeed and that
	// count), keeping the fingerprint compact at any sample size.
	algName := newAlg().Name()
	return robustDo(sc, "crash-sampled", algName,
		[]string{"crash-sampled", algName, fpScenario(sc), sampledSchedName(mkSched, seeds),
			fmt.Sprintf("victims=%v seeds=%v perSeed=%d refsteps=%v", victims, seeds, perSeed, refSteps)},
		len(jobs),
		// Rows from different seeds have different reference lengths —
		// the per-seed shape a flat claim counter cannot see.
		func(i int) int64 { return int64(jobs[i].ref + jobs[i].pt.Step) },
		func(i int) string { return fmt.Sprintf("seed=%d %s", jobs[i].seed, jobs[i].pt) },
		func(c *runnerCache, i int) CrashOutcome {
			run := sc
			run.Scheduler = mkSched(jobs[i].seed)
			return runCrashOn(c, newAlg(), run, jobs[i].pt)
		},
		func(i int, f *parwork.RowFailure) CrashOutcome {
			return CrashOutcome{Algorithm: algName, Point: jobs[i].pt,
				VictimIsWriter: jobs[i].pt.Victim >= sc.NReaders,
				CrashSection:   memmodel.SecRemainder, Err: f}
		})
}

// sampledSchedName renders the scheduler family a sampled sweep uses, for
// its fingerprint (probed on the first seed; the family is seed-uniform).
func sampledSchedName(mkSched func(seed int64) sched.Scheduler, seeds []int64) string {
	if len(seeds) == 0 {
		return "none"
	}
	return mkSched(seeds[0]).Name()
}

// dedupPoints drops duplicate sampled crash points, keeping first
// occurrences in draw order. Under a fixed scheduler seed a duplicate
// point re-runs the identical execution, which would double-count its
// outcome in the sweep's tallies.
func dedupPoints(pts []fault.Point) []fault.Point {
	seen := make(map[fault.Point]bool, len(pts))
	out := pts[:0]
	for _, pt := range pts {
		if seen[pt] {
			continue
		}
		seen[pt] = true
		out = append(out, pt)
	}
	return out
}
