package spec

import (
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/memmodel"
)

// TestStallSweepFast exhaustively stall-sweeps a tiny centralized scenario
// for both victim classes and checks the fail-slow liveness contract. It
// is small enough to run under -race in CI.
func TestStallSweepFast(t *testing.T) {
	// CSReads makes the critical section contain actual shared-memory
	// steps, so stall points can land inside it.
	sc := Scenario{NReaders: 2, NWriters: 1, ReaderPassages: 2, WriterPassages: 1, CSReads: 1}
	newAlg := func() memmodel.Algorithm { return baseline.NewCentralized() }
	for _, victim := range []int{0, sc.NReaders} {
		outs, err := StallSweep(newAlg, sc, victim, nil)
		if err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		if len(outs) == 0 {
			t.Fatalf("victim %d: empty sweep", victim)
		}
		if v := StallViolations(outs); len(v) != 0 {
			t.Fatalf("victim %d: contract violations:\n%v", victim, v)
		}
		doomedCS := 0
		for _, o := range outs {
			if !o.Point.Indefinite() {
				if !o.Completed {
					t.Errorf("victim %d %s: finite stall did not complete", victim, o.Point)
				}
				continue
			}
			if o.StallSection == memmodel.SecCS && o.Doomed() {
				doomedCS++
				for _, s := range o.DoomedProcs {
					if !s.Doomed {
						t.Errorf("victim %d %s: stuck p%d not marked doomed", victim, o.Point, s.Proc)
					}
				}
			}
		}
		if doomedCS == 0 {
			t.Errorf("victim %d: no indefinite in-CS stall doomed anyone; the sweep is not reaching the CS", victim)
		}
	}
}

// TestStallSweepAF runs the exhaustive sweep against the paper's A_f
// construction with both a reader and a writer victim on the E13-sized
// scenario, asserting the full section-sensitive contract.
func TestStallSweepAF(t *testing.T) {
	sc := Scenario{NReaders: 2, NWriters: 2, ReaderPassages: 2, WriterPassages: 2, CSReads: 1}
	newAlg := func() memmodel.Algorithm { return core.New(core.FLog) }
	for _, victim := range []int{0, sc.NReaders} {
		outs, err := StallSweep(newAlg, sc, victim, nil)
		if err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		if v := StallViolations(outs); len(v) != 0 {
			t.Fatalf("victim %d: contract violations:\n%v", victim, v)
		}
		remainder, doomed := 0, 0
		for _, o := range outs {
			if o.Point.Indefinite() && o.StallSection == memmodel.SecRemainder {
				remainder++
				if !o.SurvivorsDone {
					t.Errorf("victim %d %s: remainder stall wedged survivors", victim, o.Point)
				}
			}
			if o.Doomed() {
				doomed++
			}
		}
		if remainder == 0 {
			t.Errorf("victim %d: sweep produced no remainder-section stall", victim)
		}
		if doomed == 0 {
			t.Errorf("victim %d: no stall point doomed anyone; non-recoverable locks must wedge on in-CS stalls", victim)
		}
	}
}

// TestStallMootPoint checks the beyond-the-end stall point: the victim
// finishes first, nothing is injected, and the run completes.
func TestStallMootPoint(t *testing.T) {
	sc := Scenario{NReaders: 1, NWriters: 1, ReaderPassages: 1, WriterPassages: 1}
	ref := Run(baseline.NewCentralized(), sc)
	if !ref.OK() {
		t.Fatalf("reference: %s", ref.Failures())
	}
	out := RunStall(baseline.NewCentralized(), sc,
		fault.StallPoint{Victim: 0, Step: ref.Steps, Duration: fault.Forever})
	if out.Stalled {
		t.Error("stall point past the victim's completion must be moot")
	}
	if out.StallSection != memmodel.SecRemainder {
		t.Errorf("StallSection = %v, want remainder", out.StallSection)
	}
	if !out.Completed || !out.SurvivorsDone || !out.Safe() || out.Doomed() {
		t.Errorf("moot point outcome not complete+safe: %+v", out)
	}
}

// TestRunStallFiniteDelays pins the fast-forward guarantee at the spec
// level: even a finite stall far longer than the whole execution only
// delays, and the run completes with every quota met.
func TestRunStallFiniteDelays(t *testing.T) {
	sc := Scenario{NReaders: 2, NWriters: 1, ReaderPassages: 2, WriterPassages: 2}
	ref := Run(core.New(core.FOne), sc)
	if !ref.OK() {
		t.Fatalf("reference: %s", ref.Failures())
	}
	for step := 0; step <= ref.Steps; step += ref.Steps / 4 {
		out := RunStall(core.New(core.FOne), sc,
			fault.StallPoint{Victim: sc.NReaders, Step: step, Duration: 100 * ref.Steps})
		if !out.Completed || out.Doomed() || out.Err != nil {
			t.Fatalf("@%d: finite stall must complete: %+v", step, out)
		}
	}
}

// TestRunStallBypassAccounting checks that in-CS stalls of a writer are
// measured by the bypass monitor: the stalled-then-resumed victim's peers
// keep completing passages, so somebody's wait is overtaken, and the
// reported maxima stay within the hard ceiling (N-1) passages-by-others.
func TestRunStallBypassAccounting(t *testing.T) {
	sc := Scenario{NReaders: 2, NWriters: 2, ReaderPassages: 2, WriterPassages: 2}
	ref := Run(core.New(core.FLog), sc)
	if !ref.OK() {
		t.Fatalf("reference: %s", ref.Failures())
	}
	n := sc.NReaders + sc.NWriters
	ceiling := (n - 1) * 2 // peers × their passages
	sawBypass := false
	for step := 0; step <= ref.Steps; step++ {
		out := RunStall(core.New(core.FLog), sc,
			fault.StallPoint{Victim: sc.NReaders, Step: step, Duration: ref.Steps + 1})
		if out.Err != nil || !out.Completed {
			t.Fatalf("@%d: %+v", step, out)
		}
		if len(out.BypassByProc) != n {
			t.Fatalf("@%d: BypassByProc has %d entries, want %d", step, len(out.BypassByProc), n)
		}
		for id, b := range out.BypassByProc {
			if b > ceiling {
				t.Errorf("@%d: p%d bypassed %d times, above the %d ceiling", step, id, b, ceiling)
			}
		}
		if out.MaxReaderBypass > 0 || out.MaxWriterBypass > 0 {
			sawBypass = true
		}
	}
	if !sawBypass {
		t.Error("no stall point produced a single overtake; the bypass monitor is not wired")
	}
}

// TestStallSweepSampledDeterministic pins that the sampled sweep is a
// pure function of its seeds.
func TestStallSweepSampledDeterministic(t *testing.T) {
	sc := Scenario{NReaders: 2, NWriters: 1, ReaderPassages: 1, WriterPassages: 1}
	newAlg := func() memmodel.Algorithm { return baseline.NewFlagArray() }
	victims := []int{0, sc.NReaders}
	seeds := []int64{1, 2}
	a, err := StallSweepSampled(newAlg, sc, victims, seeds, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StallSweepSampled(newAlg, sc, victims, seeds, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("sweep sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Point != b[i].Point || a[i].Completed != b[i].Completed ||
			a[i].StallSection != b[i].StallSection || a[i].Doomed() != b[i].Doomed() {
			t.Fatalf("outcome %d diverged across identical seeds:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	if v := StallViolations(a); len(v) != 0 {
		t.Fatalf("contract violations:\n%v", v)
	}
	pts := make(map[fault.StallPoint]bool)
	for _, o := range a {
		loc := fault.StallPoint{Victim: o.Point.Victim, Step: o.Point.Step}
		if pts[loc] {
			t.Fatalf("duplicate sampled location %v", o.Point)
		}
		pts[loc] = true
	}
}

// TestMixedSweepSampled checks the combined crash+stall model on the
// centralized baseline: safety and watchdog attribution must hold in
// every sampled run even when one victim dies and another goes slow.
func TestMixedSweepSampled(t *testing.T) {
	sc := Scenario{NReaders: 2, NWriters: 2, ReaderPassages: 1, WriterPassages: 1}
	newAlg := func() memmodel.Algorithm { return baseline.NewCentralized() }
	outs, err := MixedSweepSampled(newAlg, sc,
		[]int{0, 1}, []int{2, 3}, []int64{7, 8}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) == 0 {
		t.Fatal("empty mixed sweep")
	}
	for _, o := range outs {
		if len(o.CrashPoints) != 1 {
			t.Fatalf("%s: %d crash points recorded, want 1", o.Point, len(o.CrashPoints))
		}
		if !o.Safe() {
			t.Errorf("%s + %s: ME violations %v", o.CrashPoints[0], o.Point, o.MEViolations)
		}
		if o.BudgetExceeded {
			t.Errorf("%s + %s: hang escaped the watchdog", o.CrashPoints[0], o.Point)
		}
		for _, m := range o.Misclassified {
			t.Errorf("%s + %s: %s", o.CrashPoints[0], o.Point, m)
		}
	}
}

// TestStallReaderLiveness is the spec-level Concurrent-Entering axis: in a
// readers-only scenario a reader stalled forever inside the CS must not
// block its siblings under an algorithm with genuine reader concurrency
// (flag-array), while mutex-rw — which serializes readers through its
// tournament mutex — must demonstrably doom them. The latter is the
// negative control: if mutex-rw stops failing here, the gate is broken.
func TestStallReaderLiveness(t *testing.T) {
	sc := Scenario{NReaders: 3, NWriters: 0, ReaderPassages: 2, CSReads: 2}
	inCSStall := func(newAlg func() memmodel.Algorithm) (live, doomed int) {
		t.Helper()
		outs, err := StallSweep(newAlg, sc, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v := StallViolations(outs); len(v) != 0 {
			t.Fatalf("contract violations:\n%v", v)
		}
		for _, o := range outs {
			if !o.Point.Indefinite() || o.StallSection != memmodel.SecCS {
				continue
			}
			if o.SurvivorsDone {
				live++
			}
			if o.Doomed() {
				doomed++
			}
		}
		if live+doomed == 0 {
			t.Fatal("sweep produced no indefinite in-CS stall point")
		}
		return live, doomed
	}

	live, doomed := inCSStall(func() memmodel.Algorithm { return baseline.NewFlagArray() })
	if doomed != 0 {
		t.Errorf("flag-array: %d in-CS stall points doomed sibling readers; Concurrent Entering broken", doomed)
	}
	if live == 0 {
		t.Error("flag-array: no in-CS stall point left siblings live")
	}

	_, doomed = inCSStall(func() memmodel.Algorithm { return baseline.NewMutexRW() })
	if doomed == 0 {
		t.Error("mutex-rw negative control: no in-CS reader stall doomed the siblings — the liveness gate cannot detect busy-waiting on a stalled victim")
	}
}

// TestStallOutcomeFields spot-checks outcome metadata on a single handmade
// point: victim classification and point echo survive the classification
// path.
func TestStallOutcomeFields(t *testing.T) {
	sc := Scenario{NReaders: 1, NWriters: 1, ReaderPassages: 1, WriterPassages: 1}
	pt := fault.StallPoint{Victim: 1, Step: 0, Duration: fault.Forever}
	out := RunStall(baseline.NewCentralized(), sc, pt)
	if !out.VictimIsWriter {
		t.Error("proc 1 of a 1-reader scenario must classify as a writer")
	}
	if out.Point != pt {
		t.Errorf("Point = %+v, want %+v", out.Point, pt)
	}
	if out.Algorithm != "centralized" {
		t.Errorf("Algorithm = %q", out.Algorithm)
	}
	if !reflect.DeepEqual(out.CrashPoints, []fault.Point(nil)) {
		t.Errorf("CrashPoints = %+v, want none", out.CrashPoints)
	}
	// A writer stalled before its very first shared-memory step is already
	// poised inside its entry section (section transitions are local), but
	// has published nothing yet: the lone reader must still finish.
	if !out.Stalled {
		t.Fatal("step-0 stall must be applied")
	}
	if out.StallSection != memmodel.SecEntry {
		t.Errorf("StallSection = %v, want entry", out.StallSection)
	}
	if !out.SurvivorsDone {
		t.Error("survivor reader did not finish under a pre-first-step stall")
	}
}
