package spec

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/memmodel"
	"repro/internal/sched"
)

// TestCrashSweepAF exhaustively crash-sweeps a tiny A_f scenario for both
// victim classes and checks the crash-safety contract: Mutual Exclusion
// never breaks, every hang is caught by the watchdog (never the step
// budget), remainder-section crashes leave the survivors live, and at
// least one non-remainder crash point wedges somebody (the algorithm is
// not recoverable, so a writer dying inside the CS must hang the rest).
func TestCrashSweepAF(t *testing.T) {
	sc := Scenario{NReaders: 2, NWriters: 1, ReaderPassages: 1, WriterPassages: 1}
	newAlg := func() memmodel.Algorithm { return core.New(core.FLog) }
	for _, victim := range []int{0, sc.NReaders} {
		outs, err := CrashSweep(newAlg, sc, victim, nil)
		if err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		if len(outs) == 0 {
			t.Fatalf("victim %d: empty sweep", victim)
		}
		hangs := 0
		for _, o := range outs {
			if !o.Safe() {
				t.Errorf("victim %d %s: ME violations %v", victim, o.Point, o.MEViolations)
			}
			if o.BudgetExceeded {
				t.Errorf("victim %d %s: hang escaped the watchdog (step budget hit)", victim, o.Point)
			}
			if o.Err != nil {
				t.Errorf("victim %d %s: %v", victim, o.Point, o.Err)
			}
			if o.Hung {
				hangs++
				if len(o.Stuck) == 0 {
					t.Errorf("victim %d %s: hang without stuck diagnostic", victim, o.Point)
				}
			}
			if o.CrashSection == memmodel.SecRemainder && !o.Live() {
				t.Errorf("victim %d %s: remainder-section crash wedged survivors", victim, o.Point)
			}
		}
		if victim == sc.NReaders && hangs == 0 {
			t.Errorf("no crash point hangs the writer sweep; expected CS crashes to wedge (non-recoverable lock)")
		}
	}
}

// TestCrashSweepMootPoint checks the beyond-the-end crash point: the
// victim finishes first, nothing is injected, and the run completes.
func TestCrashSweepMootPoint(t *testing.T) {
	sc := Scenario{NReaders: 1, NWriters: 1, ReaderPassages: 1, WriterPassages: 1}
	ref := Run(baseline.NewCentralized(), sc)
	if !ref.OK() {
		t.Fatalf("reference: %s", ref.Failures())
	}
	out := RunCrash(baseline.NewCentralized(),
		Scenario{NReaders: 1, NWriters: 1, ReaderPassages: 1, WriterPassages: 1},
		fault.Point{Victim: 0, Step: ref.Steps})
	if out.Crashed {
		t.Error("crash point past the victim's completion must be moot")
	}
	if out.CrashSection != memmodel.SecRemainder {
		t.Errorf("CrashSection = %v, want remainder", out.CrashSection)
	}
	if !out.Live() || !out.Safe() {
		t.Errorf("moot point outcome not live+safe: %+v", out)
	}
}

// TestCrashSweepSampledDeterministic pins that the sampled sweep is a pure
// function of its seeds.
func TestCrashSweepSampledDeterministic(t *testing.T) {
	sc := Scenario{NReaders: 2, NWriters: 1, ReaderPassages: 1, WriterPassages: 1}
	newAlg := func() memmodel.Algorithm { return baseline.NewCentralized() }
	victims := []int{0, 2}
	run := func() []CrashOutcome {
		outs, err := CrashSweepSampled(newAlg, sc, victims, []int64{7, 8}, 5, nil)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	a, b := run(), run()
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lengths %d/%d, want 10 (2 seeds x 5 points)", len(a), len(b))
	}
	for i := range a {
		if a[i].Point != b[i].Point || a[i].Hung != b[i].Hung || a[i].CrashSection != b[i].CrashSection {
			t.Fatalf("outcome %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if !a[i].Safe() {
			t.Errorf("%s: ME violations %v", a[i].Point, a[i].MEViolations)
		}
		if a[i].BudgetExceeded {
			t.Errorf("%s: step budget hit", a[i].Point)
		}
	}
}

// TestCrashSweepSampledPCT exercises the PCT-scheduler variant.
func TestCrashSweepSampledPCT(t *testing.T) {
	sc := Scenario{NReaders: 2, NWriters: 1, ReaderPassages: 1, WriterPassages: 1}
	newAlg := func() memmodel.Algorithm { return core.New(core.FOne) }
	mk := func(seed int64) sched.Scheduler { return sched.NewPCT(seed, 3, 4096) }
	outs, err := CrashSweepSampled(newAlg, sc, []int{0, 2}, []int64{1, 2}, 4, mk)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if !o.Safe() {
			t.Errorf("%s: ME violations %v", o.Point, o.MEViolations)
		}
		if o.BudgetExceeded {
			t.Errorf("%s: step budget hit", o.Point)
		}
	}
}
