package spec

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/trace"
)

func sectionEvent(proc, step int, sec memmodel.Section) trace.Event {
	return trace.Event{Proc: proc, Step: step, Section: sec, SectionChange: true}
}

// TestReportFailuresEmpty pins the zero-value report: no violations, no
// error, OK, and an empty failure string.
func TestReportFailuresEmpty(t *testing.T) {
	r := &Report{Algorithm: "x"}
	if !r.OK() {
		t.Error("zero-value report must be OK")
	}
	if got := r.Failures(); got != "" {
		t.Errorf("Failures() = %q, want empty", got)
	}
}

// TestReportFailuresErrOnly: an execution error without property
// violations still fails the report and shows up in the rendering.
func TestReportFailuresErrOnly(t *testing.T) {
	r := &Report{Err: errors.New("scheduler exploded")}
	if r.OK() {
		t.Error("report with Err must not be OK")
	}
	if got := r.Failures(); got != "scheduler exploded\n" {
		t.Errorf("Failures() = %q", got)
	}
}

// TestReportFailuresBoth renders violations before the error, one per
// line.
func TestReportFailuresBoth(t *testing.T) {
	r := &Report{
		Violations: []string{"v1", "v2"},
		Err:        errors.New("boom"),
	}
	if got := r.Failures(); got != "v1\nv2\nboom\n" {
		t.Errorf("Failures() = %q", got)
	}
}

// TestCSMonitorWriterBoundary pins the reader/writer id split: proc
// nReaders-1 is the last reader, proc nReaders the first writer. Two
// readers sharing the CS is legal; the first writer joining them is not.
func TestCSMonitorWriterBoundary(t *testing.T) {
	m := newCSMonitor(2)
	if m.isWriter(1) {
		t.Error("proc 1 of a 2-reader monitor is a reader")
	}
	if !m.isWriter(2) {
		t.Error("proc 2 of a 2-reader monitor is the first writer")
	}
	m.observe(sectionEvent(0, 1, memmodel.SecCS))
	m.observe(sectionEvent(1, 2, memmodel.SecCS))
	if len(m.violations) != 0 {
		t.Fatalf("two readers in the CS flagged: %v", m.violations)
	}
	if m.maxReaders != 2 {
		t.Errorf("maxReaders = %d, want 2", m.maxReaders)
	}
	m.observe(sectionEvent(2, 3, memmodel.SecCS))
	if len(m.violations) != 1 {
		t.Fatalf("writer joining two readers produced %d violations, want 1: %v",
			len(m.violations), m.violations)
	}
	// The rendered violation names the writer by its writer id (w0), not
	// its proc id.
	if !strings.Contains(m.violations[0], "writer w0") || !strings.Contains(m.violations[0], "2 readers") {
		t.Errorf("violation rendering: %q", m.violations[0])
	}
}

// TestCSMonitorReaderUnderWriter is the symmetric case: a reader entering
// while a writer holds the CS.
func TestCSMonitorReaderUnderWriter(t *testing.T) {
	m := newCSMonitor(1)
	m.observe(sectionEvent(1, 1, memmodel.SecCS))
	if len(m.violations) != 0 {
		t.Fatalf("lone writer flagged: %v", m.violations)
	}
	m.observe(sectionEvent(0, 2, memmodel.SecCS))
	if len(m.violations) != 1 {
		t.Fatalf("reader under writer produced %d violations: %v", len(m.violations), m.violations)
	}
	if !strings.Contains(m.violations[0], "reader r0") || !strings.Contains(m.violations[0], "step 2") {
		t.Errorf("violation rendering: %q", m.violations[0])
	}
}

// TestCSMonitorIgnoresNonTransitions: repeated same-section events and
// non-section events must not corrupt the occupancy counts.
func TestCSMonitorIgnoresNonTransitions(t *testing.T) {
	m := newCSMonitor(1)
	m.observe(trace.Event{Proc: 0, Step: 1, Section: memmodel.SecCS}) // not a SectionChange
	m.observe(sectionEvent(0, 2, memmodel.SecCS))
	m.observe(sectionEvent(0, 3, memmodel.SecCS)) // duplicate transition
	if m.readersIn != 1 {
		t.Errorf("readersIn = %d after duplicate CS events, want 1", m.readersIn)
	}
	m.observe(sectionEvent(0, 4, memmodel.SecExit))
	m.observe(sectionEvent(0, 5, memmodel.SecRemainder))
	if m.readersIn != 0 {
		t.Errorf("readersIn = %d after exit, want 0", m.readersIn)
	}
	if len(m.violations) != 0 {
		t.Errorf("violations = %v", m.violations)
	}
	// With the CS empty again, a writer may enter freely.
	m.observe(sectionEvent(1, 6, memmodel.SecCS))
	if len(m.violations) != 0 {
		t.Errorf("writer in empty CS flagged: %v", m.violations)
	}
}
