package spec

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/mutex"
	"repro/internal/sched"
	"repro/internal/sim"
)

// noopLock is deliberately broken: everyone enters immediately. The
// monitor must flag writer/reader and writer/writer CS overlap.
type noopLock struct {
	scratch memmodel.Var
}

func (l *noopLock) Name() string { return "broken-noop" }

func (l *noopLock) Init(a memmodel.Allocator, _, _ int) error {
	l.scratch = a.Alloc("x", 0)
	return nil
}

// Each section does one step so processes interleave.
func (l *noopLock) ReaderEnter(p memmodel.Proc, _ int) { p.Read(l.scratch) }
func (l *noopLock) ReaderExit(p memmodel.Proc, _ int)  { p.Read(l.scratch) }
func (l *noopLock) WriterEnter(p memmodel.Proc, _ int) { p.Read(l.scratch) }
func (l *noopLock) WriterExit(p memmodel.Proc, _ int)  { p.Read(l.scratch) }
func (l *noopLock) Props() memmodel.Props              { return memmodel.Props{} }

// tasRW serializes everyone through one TAS lock: correct but degenerate.
type tasRW struct {
	l *mutex.TAS
}

func (l *tasRW) Name() string { return "tas-rw" }

func (l *tasRW) Init(a memmodel.Allocator, _, _ int) error {
	l.l = mutex.NewTAS(a, "L")
	return nil
}

func (l *tasRW) ReaderEnter(p memmodel.Proc, _ int) { l.l.Enter(p, 0) }
func (l *tasRW) ReaderExit(p memmodel.Proc, _ int)  { l.l.Exit(p, 0) }
func (l *tasRW) WriterEnter(p memmodel.Proc, _ int) { l.l.Enter(p, 0) }
func (l *tasRW) WriterExit(p memmodel.Proc, _ int)  { l.l.Exit(p, 0) }
func (l *tasRW) Props() memmodel.Props              { return memmodel.Props{} }

// stuckLock deadlocks its first writer.
type stuckLock struct {
	never memmodel.Var
}

func (l *stuckLock) Name() string { return "stuck" }

func (l *stuckLock) Init(a memmodel.Allocator, _, _ int) error {
	l.never = a.Alloc("never", 0)
	return nil
}

func (l *stuckLock) ReaderEnter(memmodel.Proc, int) {}
func (l *stuckLock) ReaderExit(memmodel.Proc, int)  {}
func (l *stuckLock) WriterEnter(p memmodel.Proc, _ int) {
	p.Await(l.never, func(x uint64) bool { return x == 1 })
}
func (l *stuckLock) WriterExit(memmodel.Proc, int) {}
func (l *stuckLock) Props() memmodel.Props         { return memmodel.Props{} }

func TestMonitorCatchesBrokenLock(t *testing.T) {
	rep := Run(&noopLock{}, Scenario{
		NReaders: 3, NWriters: 2,
		ReaderPassages: 3, WriterPassages: 3,
		Scheduler: sched.NewRoundRobin(),
		CSReads:   2,
	})
	if rep.OK() {
		t.Fatal("broken lock passed the checker")
	}
	if len(rep.Violations) == 0 {
		t.Fatal("no violations recorded for broken lock")
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "entered CS") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations lack CS overlap message: %v", rep.Violations)
	}
}

func TestCorrectDegenerateLockPasses(t *testing.T) {
	rep := Run(&tasRW{}, Scenario{
		NReaders: 3, NWriters: 2,
		ReaderPassages: 2, WriterPassages: 2,
		Scheduler: sched.NewRandom(9),
	})
	if !rep.OK() {
		t.Fatalf("tas-rw flagged: %s", rep.Failures())
	}
	if rep.MaxConcurrentReaders != 1 {
		t.Errorf("MaxConcurrentReaders = %d, want 1 for a serializing lock", rep.MaxConcurrentReaders)
	}
	if len(rep.ReaderAccounts) != 3 || len(rep.WriterAccounts) != 2 {
		t.Errorf("accounts: %d readers, %d writers", len(rep.ReaderAccounts), len(rep.WriterAccounts))
	}
}

func TestDeadlockSurfacesAsError(t *testing.T) {
	rep := Run(&stuckLock{}, Scenario{
		NReaders: 1, NWriters: 1,
		ReaderPassages: 1, WriterPassages: 1,
		Scheduler: sched.NewRoundRobin(),
	})
	if rep.OK() {
		t.Fatal("stuck lock reported OK")
	}
	if rep.Err == nil {
		t.Fatalf("expected deadlock error, got violations only: %v", rep.Violations)
	}
	if !strings.Contains(rep.Failures(), "deadlock") {
		t.Errorf("Failures() = %q, want mention of deadlock", rep.Failures())
	}
}

func TestScenarioString(t *testing.T) {
	s := Scenario{NReaders: 4, NWriters: 2, ReaderPassages: 3, WriterPassages: 1,
		Protocol: sim.WriteBack, Scheduler: sched.NewRandom(1)}
	got := s.String()
	for _, want := range []string{"n=4", "m=2", "rp=3", "wp=1", "write-back", "random"} {
		if !strings.Contains(got, want) {
			t.Errorf("Scenario.String() = %q missing %q", got, want)
		}
	}
	if !strings.Contains((Scenario{}).String(), "round-robin") {
		t.Error("default scheduler name missing")
	}
}

func TestReportAggregatesMaxPassage(t *testing.T) {
	rep := Run(&tasRW{}, Scenario{
		NReaders: 2, NWriters: 1,
		ReaderPassages: 2, WriterPassages: 2,
		Scheduler: sched.NewRandom(4),
	})
	if !rep.OK() {
		t.Fatalf("%s", rep.Failures())
	}
	if rep.MaxReaderPassage.Steps() == 0 {
		t.Error("MaxReaderPassage empty")
	}
	if rep.MaxWriterPassage.Steps() == 0 {
		t.Error("MaxWriterPassage empty")
	}
	if rep.Steps == 0 {
		t.Error("Steps not recorded")
	}
}
