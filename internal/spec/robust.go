// Robust sweep execution: every sweep entry point in this package routes
// its fan-out through robustDo, which is a thin dispatcher — with no
// robustness options in play it is exactly the historical
// parwork.DoScoped call, and with options active it runs the same jobs
// through parwork.DoRobust with a checkpoint section as the durable sink.
// The result slots are identical either way; that is what makes an
// interrupted-and-resumed sweep byte-identical to an uninterrupted one
// (see TestCheckpointResumeDeterminism).
package spec

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/parwork"
)

// RobustOptions selects the robust execution behaviors for a sweep (see
// Scenario.Robust). The zero value disables them all, which — as an
// explicit non-nil Scenario.Robust — also shields a sweep from the
// process default.
type RobustOptions struct {
	// Store, when non-nil, checkpoints completed rows: each sweep binds
	// a section keyed by a fingerprint of its configuration, restores
	// rows a previous run completed, and records new ones. A stale
	// checkpoint (different configuration) fails the sweep with a typed
	// *checkpoint.MismatchError.
	Store *checkpoint.Store
	// KeepGoing isolates row failures: a panicking or timed-out row is
	// reported inside its result slot (the outcome's Err holds the
	// *parwork.RowFailure) and the sweep continues. Default is
	// fail-fast.
	KeepGoing bool
	// RowTimeout, when positive, is the wall-clock deadline for one
	// sweep row; a row exceeding it is reported as a stuck-row
	// *parwork.RowFailure with an all-goroutine stack dump.
	RowTimeout time.Duration
	// Stop, when non-nil, cooperatively cancels the sweep: workers stop
	// claiming rows, the checkpoint is flushed, and the sweep returns a
	// *parwork.InterruptedError. The cmd binaries wire SIGINT/SIGTERM
	// to it.
	Stop *parwork.Stopper
	// AfterRow, when non-nil, observes progress (cumulative rows
	// computed this run). Called concurrently from sweep workers.
	AfterRow func(done int)
}

// active reports whether any robust behavior is requested.
func (o *RobustOptions) active() bool {
	return o != nil && (o.Store != nil || o.KeepGoing || o.RowTimeout > 0 ||
		o.Stop != nil || o.AfterRow != nil)
}

// defaultRobust is the process-wide default (see SetDefaultRobust).
var defaultRobust atomic.Pointer[RobustOptions]

// SetDefaultRobust installs the process-wide robust options applied to
// every sweep whose Scenario.Robust is nil. The cmd binaries call it from
// their -checkpoint/-resume/-keep-going/-row-timeout flags, mirroring how
// parwork.SetDefault carries -parallel. Pass nil to clear.
func SetDefaultRobust(o *RobustOptions) { defaultRobust.Store(o) }

// DefaultRobust returns the current process-wide default, nil if unset.
func DefaultRobust() *RobustOptions { return defaultRobust.Load() }

// EffectiveRobust resolves the robust options a sweep over sc runs under:
// the scenario's own Robust field wins (including a non-nil zero value,
// which opts out of the default); otherwise the process default. Exported
// for internal/explore, whose subtree split honors the same options.
func EffectiveRobust(sc Scenario) *RobustOptions {
	if sc.Robust != nil {
		return sc.Robust
	}
	return DefaultRobust()
}

// robustDo is the single fan-out point for every sweep in this package.
// kind/algName/fpParts identify the sweep to the checkpoint store: kind
// and algName name the section, fpParts fingerprint the full
// configuration (they must determine the row set exactly and contain
// nothing execution-dependent such as worker counts). cost is the
// scheduling hint for row i (parwork.CostHint semantics; nil when the
// sweep's rows have no known shape and uniform chunking plus stealing is
// the whole story — hints never affect results, only the schedule).
// rowInfo describes row i for failure reports; onFailure builds the
// keep-going placeholder outcome carrying the row's *parwork.RowFailure.
func robustDo[T any](
	sc Scenario,
	kind, algName string,
	fpParts []string,
	n int,
	cost parwork.CostHint,
	rowInfo func(i int) string,
	job func(c *runnerCache, i int) T,
	onFailure func(i int, f *parwork.RowFailure) T,
) ([]T, error) {
	workers := sweepWorkers(sc)
	ro := EffectiveRobust(sc)
	if !ro.active() {
		return parwork.DoScopedCost(workers, n, cost,
			func() *runnerCache { return &runnerCache{} },
			(*runnerCache).close,
			job), nil
	}
	opt := parwork.Options{
		Workers:    workers,
		KeepGoing:  ro.KeepGoing,
		RowTimeout: ro.RowTimeout,
		Stop:       ro.Stop,
		Cost:       cost,
		RowInfo:    rowInfo,
		AfterRow:   ro.AfterRow,
	}
	if ro.Store != nil {
		sec, err := ro.Store.Section(kind+"/"+algName, checkpoint.Fingerprint(fpParts...), n)
		if err != nil {
			return nil, err
		}
		opt.Sink = sec
	}
	outs, _, err := parwork.DoRobust(opt, n, parwork.JSONCodec[T](),
		func() *runnerCache { return &runnerCache{} },
		(*runnerCache).close,
		job, onFailure)
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// fpScenario renders the scenario fields a sweep fingerprint must cover:
// everything String() shows plus the step budget and CS padding, which
// also shape results. The scheduler name is passed separately (the sweeps
// ignore sc.Scheduler in favor of their mkSched factories).
func fpScenario(sc Scenario) string {
	return fmt.Sprintf("%s csreads=%d maxsteps=%d", sc.String(), sc.CSReads, sc.MaxSteps)
}
