// Checkpoint wire codecs for the sweep outcome types. The resume
// determinism contract is render fidelity: a restored outcome must be
// indistinguishable from the computed one under the %+v rendering the
// determinism gates (and the experiment tables) use. Two fields need help
// from encoding/json to get there:
//
//   - Err error: interface values don't round-trip. The wire carries the
//     message and the decoder rebuilds a plain error — fmt renders error
//     fields via Error(), so the rendering is unchanged. (RowFailure
//     placeholders never take this path: failed rows are not recorded, a
//     resumed run retries them.)
//
//   - RecoverOutcome.Scenario: it embeds a live sched.Scheduler and
//     callback fields that cannot (and must not) be serialized. Scenario
//     renders via its String() method — population, passages, protocol,
//     scheduler NAME — so the wire carries exactly those fields and the
//     decoder installs a name-only stub scheduler that renders identically
//     but refuses to run.
//
// Each wire struct embeds a method-free alias of its outcome type and
// shadows the problem fields at depth 0, which suppresses the embedded
// originals under encoding/json's field-conflict rule.
package spec

import (
	"encoding/json"
	"errors"

	"repro/internal/sim"
)

// errString renders err for the wire, "" for nil.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// errFromWire rebuilds an error field, nil for "".
func errFromWire(s string) error {
	if s == "" {
		return nil
	}
	return errors.New(s)
}

// decodedScheduler is the name-only scheduler stub installed in restored
// Scenarios: Name() preserves rendering, Next refuses to run (a restored
// outcome is a record, not a runnable configuration).
type decodedScheduler struct{ name string }

func (d decodedScheduler) Name() string { return d.name }

func (d decodedScheduler) Next(int, []int) int {
	panic("spec: Scenario restored from a checkpoint is not runnable")
}

// scenarioWire carries the Scenario fields its String() rendering covers.
type scenarioWire struct {
	NReaders, NWriters             int
	ReaderPassages, WriterPassages int
	Protocol                       sim.Protocol
	Scheduler                      string
	MaxSteps, CSReads              int
}

func scenarioToWire(sc Scenario) scenarioWire {
	name := "round-robin"
	if sc.Scheduler != nil {
		name = sc.Scheduler.Name()
	}
	return scenarioWire{
		NReaders: sc.NReaders, NWriters: sc.NWriters,
		ReaderPassages: sc.ReaderPassages, WriterPassages: sc.WriterPassages,
		Protocol: sc.Protocol, Scheduler: name,
		MaxSteps: sc.MaxSteps, CSReads: sc.CSReads,
	}
}

func (w scenarioWire) toScenario() Scenario {
	return Scenario{
		NReaders: w.NReaders, NWriters: w.NWriters,
		ReaderPassages: w.ReaderPassages, WriterPassages: w.WriterPassages,
		Protocol: w.Protocol, Scheduler: decodedScheduler{w.Scheduler},
		MaxSteps: w.MaxSteps, CSReads: w.CSReads,
	}
}

// crashOutcomePlain is CrashOutcome without its methods, so the wire
// struct's embedded marshal doesn't recurse into MarshalJSON.
type crashOutcomePlain CrashOutcome

type crashOutcomeWire struct {
	crashOutcomePlain
	Err string `json:"Err,omitempty"`
}

// MarshalJSON implements json.Marshaler (value receiver, so both values
// and pointers marshal through it).
func (o CrashOutcome) MarshalJSON() ([]byte, error) {
	return json.Marshal(crashOutcomeWire{crashOutcomePlain(o), errString(o.Err)})
}

// UnmarshalJSON implements json.Unmarshaler.
func (o *CrashOutcome) UnmarshalJSON(p []byte) error {
	var w crashOutcomeWire
	if err := json.Unmarshal(p, &w); err != nil {
		return err
	}
	*o = CrashOutcome(w.crashOutcomePlain)
	o.Err = errFromWire(w.Err)
	return nil
}

type stallOutcomePlain StallOutcome

type stallOutcomeWire struct {
	stallOutcomePlain
	Err string `json:"Err,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (o StallOutcome) MarshalJSON() ([]byte, error) {
	return json.Marshal(stallOutcomeWire{stallOutcomePlain(o), errString(o.Err)})
}

// UnmarshalJSON implements json.Unmarshaler.
func (o *StallOutcome) UnmarshalJSON(p []byte) error {
	var w stallOutcomeWire
	if err := json.Unmarshal(p, &w); err != nil {
		return err
	}
	*o = StallOutcome(w.stallOutcomePlain)
	o.Err = errFromWire(w.Err)
	return nil
}

type recoverOutcomePlain RecoverOutcome

type recoverOutcomeWire struct {
	recoverOutcomePlain
	Scenario scenarioWire `json:"Scenario"`
	Err      string       `json:"Err,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (o RecoverOutcome) MarshalJSON() ([]byte, error) {
	return json.Marshal(recoverOutcomeWire{
		recoverOutcomePlain(o), scenarioToWire(o.Scenario), errString(o.Err),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (o *RecoverOutcome) UnmarshalJSON(p []byte) error {
	var w recoverOutcomeWire
	if err := json.Unmarshal(p, &w); err != nil {
		return err
	}
	*o = RecoverOutcome(w.recoverOutcomePlain)
	o.Scenario = w.Scenario.toScenario()
	o.Err = errFromWire(w.Err)
	return nil
}
