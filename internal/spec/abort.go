// Bounded-abort property: a failed try-entry attempt must complete in a
// bounded number of RMRs without waiting on any other process. The probe
// stages the worst case deterministically with barriers — an opposing
// process is parked inside the critical section, so the attempt is
// guaranteed to fail — and reads the attempt's exact RMR cost off the
// simulator's entry-section account.
package spec

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/sim"
)

// AbortCost is the measured cost of one guaranteed-failing try attempt of
// each class, with the opposing class holding the critical section.
type AbortCost struct {
	// Algorithm is the algorithm's name.
	Algorithm string
	// N is the reader population used (writers fixed at 1).
	N int
	// ReaderAttemptRMR is the RMR cost of reader 0's failed ReaderTryEnter
	// while a writer sits in the CS.
	ReaderAttemptRMR int
	// WriterAttemptRMR is the RMR cost of writer 0's failed WriterTryEnter
	// while a reader sits in the CS.
	WriterAttemptRMR int
	// ReaderAborted and WriterAborted confirm the attempts actually failed
	// (a true return would make the RMR figure meaningless).
	ReaderAborted, WriterAborted bool
}

// MeasureAbortCost stages both failed-attempt probes against fresh
// instances from newAlg, which must produce memmodel.TryAlgorithm
// implementations. n is the reader population; one writer is used.
func MeasureAbortCost(newAlg func() memmodel.Algorithm, n int) (AbortCost, error) {
	out := AbortCost{N: n}
	if n < 1 {
		return out, fmt.Errorf("abort probe: need at least one reader, got n=%d", n)
	}

	readerRMR, readerAborted, err := probeAbort(newAlg, n, false)
	if err != nil {
		return out, err
	}
	writerRMR, writerAborted, err := probeAbort(newAlg, n, true)
	if err != nil {
		return out, err
	}
	out.Algorithm = newAlg().Name()
	out.ReaderAttemptRMR = readerRMR
	out.ReaderAborted = readerAborted
	out.WriterAttemptRMR = writerRMR
	out.WriterAborted = writerAborted
	return out, nil
}

// probeAbort runs one staged execution. With tryIsWriter false, the writer
// enters the CS and parks at a barrier while reader 0 makes one try
// attempt; with tryIsWriter true the roles are swapped. It returns the
// trying process's entry-section RMR count and whether the attempt failed
// as staged.
func probeAbort(newAlg func() memmodel.Algorithm, n int, tryIsWriter bool) (rmr int, aborted bool, err error) {
	alg := newAlg()
	ta, ok := alg.(memmodel.TryAlgorithm)
	if !ok {
		return 0, false, fmt.Errorf("abort probe: %s does not implement TryAlgorithm", alg.Name())
	}
	r := sim.New(sim.Config{})
	defer r.Close()
	if err := ta.Init(r, n, 1); err != nil {
		return 0, false, fmt.Errorf("abort probe: init %s: %w", ta.Name(), err)
	}

	// Process goroutines only run while the driver steps them, so these
	// flags are synchronized by the runner's rendezvous channels.
	var entered bool
	tryReader := func(p sim.Proc) {
		p.Barrier() // wait until the holder is inside the CS
		p.Section(memmodel.SecEntry)
		if ta.ReaderTryEnter(p, 0) {
			entered = true
			p.Section(memmodel.SecCS)
			p.Section(memmodel.SecExit)
			ta.ReaderExit(p, 0)
		}
		p.Section(memmodel.SecRemainder)
	}
	tryWriter := func(p sim.Proc) {
		p.Barrier()
		p.Section(memmodel.SecEntry)
		if ta.WriterTryEnter(p, 0) {
			entered = true
			p.Section(memmodel.SecCS)
			p.Section(memmodel.SecExit)
			ta.WriterExit(p, 0)
		}
		p.Section(memmodel.SecRemainder)
	}
	holdReader := func(p sim.Proc) {
		p.Section(memmodel.SecEntry)
		ta.ReaderEnter(p, 0)
		p.Section(memmodel.SecCS)
		p.Barrier() // hold the CS while the try attempt runs
		p.Section(memmodel.SecExit)
		ta.ReaderExit(p, 0)
		p.Section(memmodel.SecRemainder)
	}
	holdWriter := func(p sim.Proc) {
		p.Section(memmodel.SecEntry)
		ta.WriterEnter(p, 0)
		p.Section(memmodel.SecCS)
		p.Barrier()
		p.Section(memmodel.SecExit)
		ta.WriterExit(p, 0)
		p.Section(memmodel.SecRemainder)
	}

	// Spec numbering: readers 0..n-1, then the single writer at id n.
	// Reader slots beyond 0 exist (slot-based algorithms size state by n)
	// but run empty programs.
	var tryID int
	if tryIsWriter {
		r.AddProc(holdReader) // reader 0 holds the CS
		tryID = n
	} else {
		r.AddProc(tryReader) // reader 0 makes the attempt
		tryID = 0
	}
	for i := 1; i < n; i++ {
		r.AddProc(func(sim.Proc) {})
	}
	if tryIsWriter {
		r.AddProc(tryWriter)
	} else {
		r.AddProc(holdWriter)
	}
	if err := r.Start(); err != nil {
		return 0, false, err
	}

	// Phase 1: run until the holder parks at its in-CS barrier (the trier
	// is parked at its initial barrier throughout).
	if err := driveToIdle(r); err != nil {
		return 0, false, fmt.Errorf("abort probe (%s): staging holder: %w", ta.Name(), err)
	}
	// Phase 2: release the trier; it runs its whole attempt and finishes.
	if err := r.ReleaseBarrier(tryID); err != nil {
		return 0, false, err
	}
	if err := driveToIdle(r); err != nil {
		return 0, false, fmt.Errorf("abort probe (%s): try attempt: %w", ta.Name(), err)
	}
	rmr = r.Account(tryID).TotalRMR
	// Phase 3: release the holder and let the execution drain, proving the
	// abort left the lock in a usable state.
	holdID := 0
	if !tryIsWriter {
		holdID = n
	}
	if err := r.ReleaseBarrier(holdID); err != nil {
		return 0, false, err
	}
	if err := r.Run(); err != nil {
		return 0, false, fmt.Errorf("abort probe (%s): drain after abort: %w", ta.Name(), err)
	}
	return rmr, !entered, nil
}

// driveToIdle steps the runner until no process is schedulable (the
// remaining live processes are parked at barriers or the execution is
// over). Deadlock and budget errors propagate.
func driveToIdle(r *sim.Runner) error {
	for {
		progressed, err := r.Step()
		if err != nil {
			return err
		}
		if !progressed {
			return nil
		}
	}
}
