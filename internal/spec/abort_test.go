package spec

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/sim"
)

// TestAbortCostBounded measures failed try attempts across populations and
// checks the bounded-abort contract: both staged attempts really abort and
// their RMR cost never exceeds a small constant multiple of the
// algorithm's blocking entry bound. Where the theory promises an
// n-independent abort path — the reader side at f(n)=n, the writer side at
// f(n)=1, and both sides of the centralized lock — the cost must be
// exactly constant across n.
func TestAbortCostBounded(t *testing.T) {
	ns := []int{2, 4, 16, 64}
	cases := []struct {
		name                     string
		newAlg                   func() memmodel.Algorithm
		constReader, constWriter bool
	}{
		{"af-1", func() memmodel.Algorithm { return core.New(core.FOne) }, false, true},
		{"af-log", func() memmodel.Algorithm { return core.New(core.FLog) }, false, false},
		{"af-n", func() memmodel.Algorithm { return core.New(core.FLinear) }, true, false},
		{"centralized", func() memmodel.Algorithm { return baseline.NewCentralized() }, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var costs []AbortCost
			for _, n := range ns {
				c, err := MeasureAbortCost(tc.newAlg, n)
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				if !c.ReaderAborted || !c.WriterAborted {
					t.Fatalf("n=%d: staged attempt did not abort: %+v", n, c)
				}
				if c.ReaderAttemptRMR <= 0 || c.WriterAttemptRMR <= 0 {
					t.Errorf("n=%d: non-positive abort cost: %+v", n, c)
				}
				costs = append(costs, c)
			}
			if tc.constReader {
				for _, c := range costs[1:] {
					if c.ReaderAttemptRMR != costs[0].ReaderAttemptRMR {
						t.Errorf("reader abort cost not constant in n: %d@n=%d vs %d@n=%d",
							costs[0].ReaderAttemptRMR, costs[0].N, c.ReaderAttemptRMR, c.N)
					}
				}
			}
			if tc.constWriter {
				for _, c := range costs[1:] {
					if c.WriterAttemptRMR != costs[0].WriterAttemptRMR {
						t.Errorf("writer abort cost not constant in n: %d@n=%d vs %d@n=%d",
							costs[0].WriterAttemptRMR, costs[0].N, c.WriterAttemptRMR, c.N)
					}
				}
			}
			// Sanity ceiling: no abort path should cost more than a few
			// dozen RMRs even at n=64 (it is a single bounded attempt, not
			// a wait).
			last := costs[len(costs)-1]
			if last.ReaderAttemptRMR > 64 || last.WriterAttemptRMR > 96 {
				t.Errorf("abort cost suspiciously large at n=%d: %+v", last.N, last)
			}
		})
	}
}

// TestTryEnterSucceedsUncontended checks the success path: with nobody
// holding the lock, both try-entries must acquire, and the usual Exit must
// release cleanly so the opposite class can follow.
func TestTryEnterSucceedsUncontended(t *testing.T) {
	algs := []struct {
		name   string
		newAlg func() memmodel.Algorithm
	}{
		{"af-log", func() memmodel.Algorithm { return core.New(core.FLog) }},
		{"centralized", func() memmodel.Algorithm { return baseline.NewCentralized() }},
	}
	for _, tc := range algs {
		t.Run(tc.name, func(t *testing.T) {
			rep := runTrySequence(t, tc.newAlg)
			if !rep.ok {
				t.Fatalf("sequence failed: reader=%v writer=%v", rep.readerGot, rep.writerGot)
			}
		})
	}
}

type trySeqReport struct {
	ok                   bool
	readerGot, writerGot bool
}

// runTrySequence drives, in strict sequence on one simulator: reader 0
// try-enters an idle lock (must succeed), exits; then writer 0 try-enters
// (must succeed), exits; then reader 0 takes a blocking passage proving
// the lock is still serviceable.
func runTrySequence(t *testing.T, newAlg func() memmodel.Algorithm) trySeqReport {
	t.Helper()
	alg := newAlg()
	ta, ok := alg.(memmodel.TryAlgorithm)
	if !ok {
		t.Fatalf("%s does not implement TryAlgorithm", alg.Name())
	}
	rep := trySeqReport{}
	r := sim.New(sim.Config{})
	defer r.Close()
	if err := ta.Init(r, 2, 1); err != nil {
		t.Fatal(err)
	}
	r.AddProc(func(p sim.Proc) {
		p.Section(memmodel.SecEntry)
		if ta.ReaderTryEnter(p, 0) {
			rep.readerGot = true
			p.Section(memmodel.SecCS)
			p.Section(memmodel.SecExit)
			ta.ReaderExit(p, 0)
		}
		p.Section(memmodel.SecRemainder)
		p.Barrier()
		p.Section(memmodel.SecEntry)
		ta.ReaderEnter(p, 0)
		p.Section(memmodel.SecCS)
		p.Section(memmodel.SecExit)
		ta.ReaderExit(p, 0)
		p.Section(memmodel.SecRemainder)
	})
	r.AddProc(func(sim.Proc) {})
	r.AddProc(func(p sim.Proc) {
		p.Barrier()
		p.Section(memmodel.SecEntry)
		if ta.WriterTryEnter(p, 0) {
			rep.writerGot = true
			p.Section(memmodel.SecCS)
			p.Section(memmodel.SecExit)
			ta.WriterExit(p, 0)
		}
		p.Section(memmodel.SecRemainder)
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	// Reader try-passage runs first (writer parked at barrier).
	if err := driveToIdle(r); err != nil {
		t.Fatal(err)
	}
	// Then the writer's try-passage, with the reader parked.
	if err := r.ReleaseBarrier(2); err != nil {
		t.Fatal(err)
	}
	if err := driveToIdle(r); err != nil {
		t.Fatal(err)
	}
	// Finally the reader's blocking passage.
	if err := r.ReleaseBarrier(0); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(); err != nil {
		t.Fatalf("final blocking passage: %v", err)
	}
	rep.ok = rep.readerGot && rep.writerGot
	return rep
}
