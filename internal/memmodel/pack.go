package memmodel

// Value packing helpers.
//
// Several of the paper's shared variables hold pairs: RSIG and WSIG[i] hold
// <sequence number, opcode> pairs, and the f-array counter nodes hold
// <version, signed sum> pairs (the version tag makes the CAS-based double
// refresh ABA-safe). Each pair is packed into a single 64-bit word so it can
// be read, written and CAS'd atomically, matching the paper's single-word
// variables.

// sigOpBits is the number of low bits reserved for the opcode in a packed
// signal word; sequence numbers use the remaining 61 bits.
const sigOpBits = 3

// sigOpMask extracts the opcode from a packed signal word.
const sigOpMask = (1 << sigOpBits) - 1

// PackSig packs a <seq, op> signal pair into one word. seq must fit in 61
// bits, which a per-passage sequence number always does.
func PackSig(seq uint64, op uint8) uint64 {
	return seq<<sigOpBits | uint64(op)&sigOpMask
}

// UnpackSig splits a packed signal word into its <seq, op> pair.
func UnpackSig(w uint64) (seq uint64, op uint8) {
	return w >> sigOpBits, uint8(w & sigOpMask)
}

// SigSeq returns just the sequence number of a packed signal word.
func SigSeq(w uint64) uint64 { return w >> sigOpBits }

// SigOp returns just the opcode of a packed signal word.
func SigOp(w uint64) uint8 { return uint8(w & sigOpMask) }

// PackVerSum packs a counter-node <version, sum> pair: a 32-bit version tag
// in the high half and a signed 32-bit partial sum (two's complement) in the
// low half.
func PackVerSum(ver uint32, sum int32) uint64 {
	return uint64(ver)<<32 | uint64(uint32(sum))
}

// UnpackVerSum splits a packed counter node into its version and signed sum.
func UnpackVerSum(w uint64) (ver uint32, sum int32) {
	return uint32(w >> 32), int32(uint32(w))
}

// VerSumSum returns just the signed sum of a packed counter node.
func VerSumSum(w uint64) int32 { return int32(uint32(w)) }
