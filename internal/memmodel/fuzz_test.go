package memmodel

import "testing"

// FuzzPackSig checks the signal-pair encoding is a bijection on its
// domain under arbitrary inputs.
func FuzzPackSig(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(42), uint8(7))
	f.Add(uint64(1)<<60, uint8(3))
	f.Fuzz(func(t *testing.T, seq uint64, op uint8) {
		seq &= (1 << 61) - 1
		op &= 7
		gotSeq, gotOp := UnpackSig(PackSig(seq, op))
		if gotSeq != seq || gotOp != op {
			t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", seq, op, gotSeq, gotOp)
		}
	})
}

// FuzzPackVerSum checks the counter-node encoding round-trips for all
// version/sum pairs, including negative sums.
func FuzzPackVerSum(f *testing.F) {
	f.Add(uint32(0), int32(0))
	f.Add(uint32(1<<31), int32(-1))
	f.Add(^uint32(0), int32(1<<31-1))
	f.Fuzz(func(t *testing.T, ver uint32, sum int32) {
		gotVer, gotSum := UnpackVerSum(PackVerSum(ver, sum))
		if gotVer != ver || gotSum != sum {
			t.Fatalf("roundtrip (%d,%d) -> (%d,%d)", ver, sum, gotVer, gotSum)
		}
	})
}
