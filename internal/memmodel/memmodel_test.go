package memmodel

import (
	"testing"
	"testing/quick"
)

func TestOpKindString(t *testing.T) {
	cases := []struct {
		k    OpKind
		want string
	}{
		{OpRead, "read"},
		{OpWrite, "write"},
		{OpCAS, "cas"},
		{OpFetchAdd, "faa"},
		{OpAwait, "await"},
		{OpKind(0), "unknown"},
		{OpKind(99), "unknown"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("OpKind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestOpKindReading(t *testing.T) {
	cases := []struct {
		k    OpKind
		want bool
	}{
		{OpRead, true},
		{OpCAS, true},
		{OpAwait, true},
		{OpFetchAdd, true},
		{OpWrite, false},
	}
	for _, c := range cases {
		if got := c.k.Reading(); got != c.want {
			t.Errorf("OpKind %v Reading() = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestSectionString(t *testing.T) {
	cases := []struct {
		s    Section
		want string
	}{
		{SecRemainder, "remainder"},
		{SecEntry, "entry"},
		{SecCS, "cs"},
		{SecExit, "exit"},
		{Section(0), "unknown"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("Section(%d).String() = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestPackSigRoundTrip(t *testing.T) {
	cases := []struct {
		seq uint64
		op  uint8
	}{
		{0, 0},
		{1, 1},
		{42, 7},
		{1 << 60, 3},
		{(1 << 61) - 1, 7},
	}
	for _, c := range cases {
		w := PackSig(c.seq, c.op)
		seq, op := UnpackSig(w)
		if seq != c.seq || op != c.op {
			t.Errorf("UnpackSig(PackSig(%d,%d)) = (%d,%d)", c.seq, c.op, seq, op)
		}
		if SigSeq(w) != c.seq {
			t.Errorf("SigSeq mismatch for seq=%d", c.seq)
		}
		if SigOp(w) != c.op {
			t.Errorf("SigOp mismatch for op=%d", c.op)
		}
	}
}

func TestPackSigRoundTripProperty(t *testing.T) {
	f := func(seq uint64, op uint8) bool {
		seq &= (1 << 61) - 1
		op &= 7
		s, o := UnpackSig(PackSig(seq, op))
		return s == seq && o == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackSigOpMasked(t *testing.T) {
	// Opcodes above 7 are masked to their low 3 bits rather than
	// corrupting the sequence field.
	w := PackSig(5, 0xFF)
	seq, op := UnpackSig(w)
	if seq != 5 {
		t.Errorf("seq corrupted: got %d, want 5", seq)
	}
	if op != 7 {
		t.Errorf("op = %d, want 7", op)
	}
}

func TestPackVerSumRoundTrip(t *testing.T) {
	cases := []struct {
		ver uint32
		sum int32
	}{
		{0, 0},
		{1, 1},
		{7, -1},
		{1 << 31, -(1 << 30)},
		{^uint32(0), 1<<31 - 1},
		{12345, -1 << 31},
	}
	for _, c := range cases {
		w := PackVerSum(c.ver, c.sum)
		ver, sum := UnpackVerSum(w)
		if ver != c.ver || sum != c.sum {
			t.Errorf("UnpackVerSum(PackVerSum(%d,%d)) = (%d,%d)", c.ver, c.sum, ver, sum)
		}
		if VerSumSum(w) != c.sum {
			t.Errorf("VerSumSum mismatch for sum=%d", c.sum)
		}
	}
}

func TestPackVerSumRoundTripProperty(t *testing.T) {
	f := func(ver uint32, sum int32) bool {
		v, s := UnpackVerSum(PackVerSum(ver, sum))
		return v == ver && s == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackSigDistinct(t *testing.T) {
	// Distinct <seq, op> pairs must map to distinct words: the A_f
	// handshake relies on CAS distinguishing them.
	seen := make(map[uint64]struct{})
	for seq := uint64(0); seq < 16; seq++ {
		for op := uint8(0); op < 8; op++ {
			w := PackSig(seq, op)
			if _, dup := seen[w]; dup {
				t.Fatalf("collision at seq=%d op=%d", seq, op)
			}
			seen[w] = struct{}{}
		}
	}
}
