// Package memmodel defines the abstract shared-memory machine model from
// Hendler, "On the Complexity of Reader-Writer Locks" (PODC 2016), Section 2.
//
// Algorithms (locks, counters, mutexes) are written once against the Proc
// interface and can then run on two interchangeable backends:
//
//   - internal/sim: a deterministic cache-coherent (CC) simulator that
//     schedules one shared-memory step at a time and counts remote memory
//     references (RMRs) exactly as the paper's model prescribes, and
//   - internal/native: real sync/atomic words for hardware benchmarks.
//
// A step applies a read, write, CAS or fetch-and-add operation to a shared
// variable. Reads and CASes are "reading steps"; writes, successful
// value-changing CASes and fetch-and-adds are "writing steps". A step that
// does not change the value of the variable it accesses is "trivial".
// Busy-wait loops are expressed with Await/AwaitMulti, which model local
// spinning on cached copies: the spinner is charged one RMR per
// invalidation-triggered re-read of each spun-on variable.
package memmodel

// Var identifies a shared variable. Variables are allocated once, before an
// execution starts, through an Allocator; algorithms address them by index.
type Var int32

// NoVar is the zero-ish sentinel for "no variable".
const NoVar Var = -1

// OpKind enumerates the shared-memory operations of the model.
type OpKind uint8

const (
	// OpRead is a read step.
	OpRead OpKind = iota + 1
	// OpWrite is a write step.
	OpWrite
	// OpCAS is a compare-and-swap step. Per the paper, CAS(v, expected,
	// new) changes v to new only if v == expected and returns the value of
	// v prior to its application; it is both a reading and a writing step.
	OpCAS
	// OpFetchAdd is an atomic fetch-and-add step. The paper's algorithms
	// do not use it; it exists for the FAA-based baseline locks the paper
	// compares against (Section 6).
	OpFetchAdd
	// OpAwait is a local-spin wait: a read followed by blocking until the
	// spun-on variable is invalidated and its new value satisfies the
	// predicate.
	OpAwait
)

// String returns the conventional lower-case name of the operation.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCAS:
		return "cas"
	case OpFetchAdd:
		return "faa"
	case OpAwait:
		return "await"
	default:
		return "unknown"
	}
}

// Reading reports whether the operation is a reading step in the paper's
// sense (reads and CASes; Await is a sequence of reads).
func (k OpKind) Reading() bool {
	return k == OpRead || k == OpCAS || k == OpAwait || k == OpFetchAdd
}

// Section labels the phase of a lock passage a process is currently in.
// The simulator attributes every RMR to the section in which it occurs so
// experiments can report exactly the quantities in the paper's theorems
// (writer-entry RMRs, reader-exit RMRs, ...).
type Section uint8

const (
	// SecRemainder is the remainder section (not in a passage).
	SecRemainder Section = iota + 1
	// SecEntry is the entry section of a passage.
	SecEntry
	// SecCS is the critical section.
	SecCS
	// SecExit is the exit section of a passage.
	SecExit
	// SecRecover is the recovery section a restarted incarnation executes
	// before rejoining normal passages (crash-recovery failure model). Its
	// RMRs are accounted separately: recoverable-mutual-exclusion bounds
	// are stated per recovery attempt.
	SecRecover
)

// NumSections is the number of distinct Section values (plus one for the
// zero value, which is never used); useful for array-indexed accounting.
const NumSections = 6

// String returns the section name.
func (s Section) String() string {
	switch s {
	case SecRemainder:
		return "remainder"
	case SecEntry:
		return "entry"
	case SecCS:
		return "cs"
	case SecExit:
		return "exit"
	case SecRecover:
		return "recover"
	default:
		return "unknown"
	}
}

// Pred is a predicate over the value of a single shared variable. Predicates
// passed to Await must be pure functions of the value.
type Pred func(uint64) bool

// MultiPred is a predicate over the values of several shared variables, in
// the order they were passed to AwaitMulti. It must be a pure function of
// the values.
type MultiPred func([]uint64) bool

// Proc is the per-process handle through which an algorithm performs shared
// memory steps. A Proc is bound to exactly one process and must only be
// used from that process's execution context.
type Proc interface {
	// ID returns the global process identifier, in [0, NumProcs).
	ID() int

	// Read performs a read step on v and returns its value.
	Read(v Var) uint64

	// Write performs a write step, setting v to x.
	Write(v Var, x uint64)

	// CAS performs a compare-and-swap step: if v's value equals old it is
	// set to new. It returns the value v held immediately before the step
	// and whether the swap was applied.
	CAS(v Var, old, new uint64) (prev uint64, swapped bool)

	// FetchAdd atomically adds delta (two's complement) to v and returns
	// the previous value.
	FetchAdd(v Var, delta uint64) (prev uint64)

	// Await spins locally until pred holds for v's value, then returns
	// that value. It models an "await" pseudo-code line: the process holds
	// a cached copy and re-checks only when the copy is invalidated.
	Await(v Var, pred Pred) uint64

	// AwaitMulti spins locally on several variables at once until pred
	// holds for their joint values, then returns those values. It models
	// multi-variable spin loops such as Peterson's entry protocol.
	AwaitMulti(vars []Var, pred MultiPred) []uint64

	// Section declares that the process is now in section s. Backends use
	// this for RMR attribution and property checking; it is not a shared
	// memory step.
	Section(s Section)
}

// Allocator allocates shared variables during algorithm setup, before any
// process takes steps.
type Allocator interface {
	// Alloc allocates one shared variable with a debug name and an initial
	// value.
	Alloc(name string, init uint64) Var

	// AllocN allocates n shared variables that share a name prefix, all
	// with the same initial value.
	AllocN(name string, n int, init uint64) []Var
}

// HomeAllocator is the optional extension implemented by backends that
// model distributed shared memory (DSM), where every variable resides in
// exactly one process's memory segment and accesses by other processes are
// RMRs. The home process id uses the global numbering (readers first, then
// writers — the spec harness convention). Backends without a locality
// notion (the CC simulator protocols, the native backend) simply ignore
// homes via the AllocHome helper's fallback.
type HomeAllocator interface {
	// AllocHome allocates a variable homed at process home.
	AllocHome(name string, init uint64, home int) Var
}

// AllocHome allocates through a's HomeAllocator extension when present and
// falls back to a plain Alloc otherwise. Algorithms use it to declare
// variable locality without coupling to a backend.
func AllocHome(a Allocator, name string, init uint64, home int) Var {
	if ha, ok := a.(HomeAllocator); ok {
		return ha.AllocHome(name, init, home)
	}
	return a.Alloc(name, init)
}

// Algorithm is a reader-writer lock written against the abstract model. An
// Algorithm is instantiated for a fixed population of nReaders reader
// processes and nWriters writer processes; process identities are stable
// across passages (slot-based algorithms depend on this).
//
// The four passage methods must bracket the critical section with Section
// calls: Enter methods are invoked with the process in SecEntry and must
// leave it in SecCS; Exit methods are invoked in SecExit and must leave the
// process in SecRemainder. The spec harness drives those transitions.
type Algorithm interface {
	// Name returns a short stable identifier (e.g. "af-log", "centralized").
	Name() string

	// Init allocates all shared state for the given population. It is
	// called exactly once per execution, before any steps.
	Init(a Allocator, nReaders, nWriters int) error

	// ReaderEnter executes the reader entry section for reader rid
	// (0 <= rid < nReaders) on behalf of process p.
	ReaderEnter(p Proc, rid int)

	// ReaderExit executes the reader exit section for reader rid.
	ReaderExit(p Proc, rid int)

	// WriterEnter executes the writer entry section for writer wid
	// (0 <= wid < nWriters).
	WriterEnter(p Proc, wid int)

	// WriterExit executes the writer exit section for writer wid.
	WriterExit(p Proc, wid int)

	// Props describes the algorithm's claimed properties and predicted
	// asymptotic RMR bounds; experiments and the spec harness consume it.
	Props() Props
}

// TryAlgorithm is the optional extension for abortable entry. A try-entry
// method makes one bounded attempt at the corresponding entry section: it
// returns true with the process inside the critical section (released with
// the usual Exit method), or false after a bounded abandon path that leaves
// the process back in the remainder section and the lock's shared state
// consistent — in particular, other processes' Mutual Exclusion, progress
// and signaling invariants are unaffected, exactly as if the aborting
// process had performed an instantaneous empty passage. Try-entry methods
// never wait unboundedly: every busy-wait of the blocking entry section
// becomes a single check whose failure triggers the abandon path.
//
// Abort-path RMR costs are algorithm-specific; the spec harness measures
// them on the simulator (bounded-abort property). Callers wanting blocking
// behavior with a deadline retry attempts under exponential backoff (see
// internal/native's TryLock).
type TryAlgorithm interface {
	Algorithm

	// ReaderTryEnter attempts the reader entry section for rid. It is
	// invoked with the process in SecEntry; on true the process is in
	// SecCS-eligible state, on false the attempt has been rolled back.
	ReaderTryEnter(p Proc, rid int) bool

	// WriterTryEnter is the writer-side analogue of ReaderTryEnter.
	WriterTryEnter(p Proc, wid int) bool
}

// Recovery is the verdict of a recovery section: what a restarted
// incarnation found out about its dead predecessor's interrupted passage,
// and therefore where the process re-enters the passage cycle.
type Recovery uint8

const (
	// RecoverAbort means the interrupted passage was rolled back: shared
	// state shows no trace of it, the process is back in the remainder
	// section, and the passage must be retried from its entry section.
	RecoverAbort Recovery = iota + 1
	// RecoverCS means the dead incarnation held (or had irrevocably
	// acquired) the critical section: recovery completed the entry, the
	// restarted incarnation now holds the CS, and the caller must run the
	// CS body followed by the ordinary exit section.
	RecoverCS
	// RecoverDone means the interrupted passage completed during recovery
	// (the crash hit the exit section; recovery finished it). The process
	// is in the remainder section and the passage counts as completed.
	RecoverDone
)

// String returns the verdict name.
func (v Recovery) String() string {
	switch v {
	case RecoverAbort:
		return "abort"
	case RecoverCS:
		return "cs"
	case RecoverDone:
		return "done"
	default:
		return "unknown"
	}
}

// RecoverableAlgorithm is the optional extension for the crash-recovery
// failure model, following the Golab-Ramaraju recoverable-mutual-exclusion
// structure: a process that crashes mid-passage is restarted as a fresh
// incarnation that first executes a recovery section. The recovery section
// inspects the process's per-process announcement state in shared memory
// and either completes the interrupted passage or rolls it back, returning
// the Recovery verdict that tells the caller how to proceed.
//
// Requirements on implementations:
//
//   - All state a recovery section needs must live in shared memory
//     (announcement variables); Go-local per-process fields are lost with
//     the dead incarnation and must not carry information across a crash.
//   - Recover methods may wait on other processes (like entry sections do),
//     but every wait must be a local-spin Await so hangs stay
//     watchdog-detectable.
//   - Recovery must be idempotent under re-crash: a crash inside the
//     recovery section followed by another restart re-runs Recover, which
//     must again terminate with a correct verdict.
//   - Mutual Exclusion must hold across incarnations: the restarted
//     incarnation is the same process identity, and no other process may
//     observe a state in which both it and the dead incarnation's passage
//     are in the CS.
type RecoverableAlgorithm interface {
	Algorithm

	// ReaderRecover executes the recovery section for reader rid after a
	// crash of its previous incarnation (which may have been anywhere in
	// the passage cycle, including the remainder section or a previous
	// recovery section).
	ReaderRecover(p Proc, rid int) Recovery

	// WriterRecover is the writer-side analogue of ReaderRecover.
	WriterRecover(p Proc, wid int) Recovery
}

// Props declares an Algorithm's operation set, claimed properties, and
// predicted RMR complexity, used by the spec harness (to know what to
// assert) and the experiment tables (to print predicted columns).
type Props struct {
	// UsesCAS reports whether the algorithm issues CAS steps.
	UsesCAS bool
	// UsesFAA reports whether the algorithm issues fetch-and-add steps.
	// The paper's tradeoff applies only to read/write/CAS algorithms; FAA
	// algorithms (Bhatt-Jayanti style) can beat it.
	UsesFAA bool
	// ConcurrentEntering reports whether the algorithm claims the
	// Concurrent Entering property (Section 2.1). Mutex-based RW locks do
	// not.
	ConcurrentEntering bool
	// ReaderStarvationFree reports whether readers are guaranteed to
	// complete passages while writers keep arriving.
	ReaderStarvationFree bool
	// PredictedReaderRMR returns the asymptotic per-passage reader RMR
	// bound for n readers and m writers (the Theta shape, up to constant
	// factors), or 0 if unspecified.
	PredictedReaderRMR func(n, m int) float64
	// PredictedWriterRMR is the analogous writer bound.
	PredictedWriterRMR func(n, m int) float64
}
