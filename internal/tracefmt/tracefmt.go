// Package tracefmt renders simulator traces as human-readable,
// lane-per-process timelines. The explorer prints these for violating
// schedules (a mutual-exclusion violation is much easier to understand as
// a timeline than as a choice vector), and they make good debugging output
// for any staged construction.
//
// Example output (one row per event, one column per process):
//
//	step  p0              p1              p2
//	----------------------------------------------
//	   0  R C[0].0=0*
//	   1                  W flag=1*
//	      [p1 -> cs]
//	   2                                  CAS! RSIG=3*
//
// Cell notation: R read, W write, CAS! successful CAS, CAS~ failed CAS,
// F&A fetch-and-add, aw await re-check; a trailing * marks an RMR;
// [pN -> section] lines are section transitions.
package tracefmt

import (
	"fmt"
	"strings"

	"repro/internal/memmodel"
	"repro/internal/trace"
)

// Options configures rendering.
type Options struct {
	// NumProcs is the number of process lanes. Zero means infer from the
	// events.
	NumProcs int
	// VarName resolves variable names; nil falls back to "v<N>".
	VarName func(memmodel.Var) string
	// ValueFormat renders a variable's value; nil falls back to decimal.
	// Use it to unpack encoded words (e.g. <version, sum> counter nodes
	// or <seq, opcode> signal pairs).
	ValueFormat func(v memmodel.Var, val uint64) string
	// HideSections suppresses section-transition rows.
	HideSections bool
	// MaxEvents truncates long traces (0 = no limit), keeping the tail,
	// which is where violations manifest.
	MaxEvents int
}

// Render formats the events as a timeline.
func Render(events []trace.Event, opts Options) string {
	nProcs := opts.NumProcs
	for _, e := range events {
		if e.Proc+1 > nProcs {
			nProcs = e.Proc + 1
		}
	}
	varName := opts.VarName
	if varName == nil {
		varName = func(v memmodel.Var) string { return fmt.Sprintf("v%d", v) }
	}
	valFmt := opts.ValueFormat
	if valFmt == nil {
		valFmt = func(_ memmodel.Var, val uint64) string { return fmt.Sprintf("%d", val) }
	}

	truncated := 0
	if opts.MaxEvents > 0 && len(events) > opts.MaxEvents {
		truncated = len(events) - opts.MaxEvents
		events = events[truncated:]
	}

	const laneWidth = 24
	var b strings.Builder
	// Header.
	b.WriteString("step  ")
	for p := 0; p < nProcs; p++ {
		fmt.Fprintf(&b, "%-*s", laneWidth, fmt.Sprintf("p%d", p))
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 6+laneWidth*nProcs))
	b.WriteByte('\n')
	if truncated > 0 {
		fmt.Fprintf(&b, "      ... %d earlier events elided ...\n", truncated)
	}

	for _, e := range events {
		if e.SectionChange {
			if !opts.HideSections {
				fmt.Fprintf(&b, "      [p%d -> %s]\n", e.Proc, e.Section)
			}
			continue
		}
		fmt.Fprintf(&b, "%5d ", e.Step)
		for p := 0; p < nProcs; p++ {
			cell := ""
			if p == e.Proc {
				cell = cellFor(e, varName, valFmt)
			}
			fmt.Fprintf(&b, "%-*s", laneWidth, cell)
		}
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), " \n") + "\n"
}

// cellFor renders one event's cell.
func cellFor(e trace.Event, varName func(memmodel.Var) string, valFmt func(memmodel.Var, uint64) string) string {
	name := varName(e.Var)
	val := func(x uint64) string { return valFmt(e.Var, x) }
	rmr := ""
	if e.RMR {
		rmr = "*"
	}
	switch e.Kind {
	case memmodel.OpRead:
		return fmt.Sprintf("R %s=%s%s", name, val(e.Before), rmr)
	case memmodel.OpWrite:
		return fmt.Sprintf("W %s:=%s%s", name, val(e.Arg), rmr)
	case memmodel.OpCAS:
		mark := "~"
		if e.Swapped {
			mark = "!"
		}
		return fmt.Sprintf("CAS%s %s %s->%s%s", mark, name, val(e.CASExpected), val(e.Arg), rmr)
	case memmodel.OpFetchAdd:
		return fmt.Sprintf("F&A %s+=%d=%s%s", name, int64(e.Arg), val(e.After), rmr)
	case memmodel.OpAwait:
		return fmt.Sprintf("aw %s=%s%s", name, val(e.Before), rmr)
	default:
		return fmt.Sprintf("? %s%s", name, rmr)
	}
}
