package tracefmt

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/trace"
)

func sampleEvents() []trace.Event {
	return []trace.Event{
		{Step: 0, Proc: 0, Kind: memmodel.OpRead, Var: 1, Before: 7, RMR: true},
		{Proc: 1, SectionChange: true, Section: memmodel.SecCS},
		{Step: 1, Proc: 1, Kind: memmodel.OpWrite, Var: 1, Arg: 9, RMR: true},
		{Step: 2, Proc: 2, Kind: memmodel.OpCAS, Var: 0, CASExpected: 0, Arg: 5, Swapped: true},
		{Step: 3, Proc: 2, Kind: memmodel.OpCAS, Var: 0, CASExpected: 0, Arg: 5, Swapped: false, RMR: true},
		{Step: 4, Proc: 0, Kind: memmodel.OpFetchAdd, Var: 2, Arg: 3, After: 3},
		{Step: 5, Proc: 1, Kind: memmodel.OpAwait, Var: 1, Before: 9},
	}
}

func TestRenderBasics(t *testing.T) {
	out := Render(sampleEvents(), Options{})
	for _, want := range []string{
		"p0", "p1", "p2",
		"R v1=7*",
		"W v1:=9*",
		"CAS! v0 0->5",
		"CAS~ v0 0->5*",
		"F&A v2+=3=3",
		"aw v1=9",
		"[p1 -> cs]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderVarNames(t *testing.T) {
	names := map[memmodel.Var]string{0: "RSIG", 1: "C[0]", 2: "WSEQ"}
	out := Render(sampleEvents(), Options{
		VarName: func(v memmodel.Var) string { return names[v] },
	})
	if !strings.Contains(out, "R C[0]=7*") || !strings.Contains(out, "CAS! RSIG") {
		t.Errorf("variable names not applied:\n%s", out)
	}
}

func TestRenderHideSections(t *testing.T) {
	out := Render(sampleEvents(), Options{HideSections: true})
	if strings.Contains(out, "->") && strings.Contains(out, "[p1") {
		t.Errorf("sections not hidden:\n%s", out)
	}
}

func TestRenderTruncation(t *testing.T) {
	events := make([]trace.Event, 50)
	for i := range events {
		events[i] = trace.Event{Step: i, Proc: 0, Kind: memmodel.OpRead, Var: 0}
	}
	out := Render(events, Options{MaxEvents: 10})
	if !strings.Contains(out, "40 earlier events elided") {
		t.Errorf("missing truncation notice:\n%s", out)
	}
	if strings.Contains(out, "\n    0 ") {
		t.Errorf("early events not elided:\n%s", out)
	}
	if !strings.Contains(out, "   49 ") {
		t.Errorf("tail missing:\n%s", out)
	}
}

func TestRenderLaneAlignment(t *testing.T) {
	out := Render(sampleEvents(), Options{})
	lines := strings.Split(out, "\n")
	// All p2 events appear in the third lane: column offset 6 + 2*24.
	for _, line := range lines {
		if strings.Contains(line, "CAS") {
			idx := strings.Index(line, "CAS")
			if idx != 6+2*24 {
				t.Errorf("CAS cell at column %d, want %d: %q", idx, 6+2*24, line)
			}
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(nil, Options{NumProcs: 2})
	if !strings.Contains(out, "p0") || !strings.Contains(out, "p1") {
		t.Errorf("empty render lacks header:\n%s", out)
	}
}
