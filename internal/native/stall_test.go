package native

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/memmodel"
)

// exerciseStalledHolder is the native fail-slow stress: with GOMAXPROCS
// squeezed far below the goroutine count, a writer acquires the lock and
// goes to sleep holding it — the scheduler-level analogue of the
// simulator's stall injection. Oversubscribed readers and writers hammer
// TryLock with budgets shorter than the holder's nap, so their deadlines
// expire mid-backoff: every such attempt must return false in bounded
// time (never block inside the protocol waiting for the sleeping holder),
// every failed attempt must leave the lock state clean enough for the
// post-release acquisitions to succeed, and no goroutine may leak.
func exerciseStalledHolder(t *testing.T, alg memmodel.Algorithm) {
	t.Helper()
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)

	const (
		nReaders  = 8
		nWriters  = 4
		holdTime  = 30 * time.Millisecond
		tryBudget = 2 * time.Millisecond
	)
	lock, err := NewLock(alg, nReaders, nWriters)
	if err != nil {
		t.Fatal(err)
	}
	if !lock.Abortable() {
		t.Fatalf("%s is not abortable", alg.Name())
	}

	before := runtime.NumGoroutine()
	var timedOut, acquired atomic.Int64
	held := make(chan struct{})    // closed once the holder has the lock
	release := make(chan struct{}) // closed when the holder wakes up

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the fail-slow holder: writer 0
		defer wg.Done()
		h := lock.Writer(0)
		h.Lock()
		close(held)
		time.Sleep(holdTime) // descheduled while holding the lock
		close(release)
		h.Unlock()
	}()
	<-held

	// Phase 1: while the holder sleeps, every short-budget attempt must
	// time out through the backoff loop rather than block.
	attempt := func(try func(time.Duration) bool) {
		defer wg.Done()
		start := time.Now()
		if try(tryBudget) {
			// Only possible after the holder released; tolerate the race
			// but account for the acquisition.
			acquired.Add(1)
			return
		}
		if elapsed := time.Since(start); elapsed > holdTime {
			t.Errorf("TryLock with a %v budget blocked for %v; the attempt must not wait on the stalled holder", tryBudget, elapsed)
		}
		timedOut.Add(1)
	}
	for rid := 0; rid < nReaders; rid++ {
		h := lock.Reader(rid)
		wg.Add(1)
		go attempt(func(d time.Duration) bool {
			if !h.TryLock(d) {
				return false
			}
			h.Unlock()
			return true
		})
	}
	for wid := 1; wid < nWriters; wid++ {
		h := lock.Writer(wid)
		wg.Add(1)
		go attempt(func(d time.Duration) bool {
			if !h.TryLock(d) {
				return false
			}
			h.Unlock()
			return true
		})
	}

	// Phase 2: once the holder resumes and releases, generous-budget
	// retries must get in — the timeouts above abandoned cleanly.
	<-release
	var post sync.WaitGroup
	var postAcquired atomic.Int64
	for rid := 0; rid < nReaders; rid++ {
		h := lock.Reader(rid)
		post.Add(1)
		go func() {
			defer post.Done()
			if h.TryLock(2 * time.Second) {
				postAcquired.Add(1)
				h.Unlock()
			}
		}()
	}
	post.Wait()
	wg.Wait()

	if timedOut.Load() == 0 {
		t.Error("no attempt timed out against the sleeping holder; the stall window never bit")
	}
	if got := postAcquired.Load(); got != nReaders {
		t.Errorf("after release only %d/%d readers acquired; a timed-out attempt corrupted the lock state", got, nReaders)
	}

	// Leak check: every goroutine this test spawned must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(time.Millisecond)
	}
	_ = acquired.Load() // phase-1 stragglers that raced the release are fine
}

func TestStalledHolderAF(t *testing.T) {
	exerciseStalledHolder(t, core.New(core.FLog))
}

func TestStalledHolderCentralized(t *testing.T) {
	exerciseStalledHolder(t, baseline.NewCentralized())
}
