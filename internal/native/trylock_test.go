package native

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/memmodel"
)

// exerciseTry hammers a lock with a mix of blocking Lock and time-bounded
// TryLock passages; writers make non-atomic two-word updates, readers
// check them for tears, and the final totals must account for exactly the
// passages whose TryLock succeeded. Under -race this is the
// happens-before check for the abortable entry paths: both the acquired
// path and the abandon path must synchronize correctly with concurrent
// blocking passages.
//
// Crash-exit paths (killing a goroutine mid-entry with runtime.Goexit or
// panic) are deliberately not exercised: the paper's algorithms are not
// recoverable, so a goroutine dying between its first entry-section step
// and its exit wedges the lock by design — all such a native test could
// assert is "everything hangs", nondeterministically. The crash-stop
// behavior is instead proven deterministically on the simulator, at every
// step boundary, by the internal/fault sweep (rwverify -crash, E13).
func exerciseTry(t *testing.T, alg memmodel.Algorithm, nReaders, nWriters, passages int) {
	t.Helper()
	lock, err := NewLock(alg, nReaders, nWriters)
	if err != nil {
		t.Fatal(err)
	}
	if !lock.Abortable() {
		t.Fatalf("%s is not abortable", alg.Name())
	}
	var x, y int // protected by lock; must always be equal
	var wrote atomic.Int64
	var wg sync.WaitGroup
	for rid := 0; rid < nReaders; rid++ {
		h := lock.Reader(rid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < passages; i++ {
				if i%2 == 0 {
					if !h.TryLock(2 * time.Millisecond) {
						continue
					}
				} else {
					h.Lock()
				}
				if x != y {
					t.Errorf("reader saw torn update: x=%d y=%d", x, y)
				}
				h.Unlock()
			}
		}()
	}
	for wid := 0; wid < nWriters; wid++ {
		h := lock.Writer(wid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var got int64
			for i := 0; i < passages; i++ {
				if i%2 == 0 {
					if !h.TryLock(2 * time.Millisecond) {
						continue
					}
				} else {
					h.Lock()
				}
				x++
				y++
				got++
				h.Unlock()
			}
			wrote.Add(got)
		}()
	}
	wg.Wait()
	if want := int(wrote.Load()); x != want || y != want {
		t.Errorf("final x=%d y=%d, want %d (lost or phantom writer updates)", x, y, want)
	}
}

// TestTryLockStressAF covers every A_f tradeoff point under -race.
func TestTryLockStressAF(t *testing.T) {
	for _, f := range core.StandardFs {
		f := f
		t.Run("af-"+f.Name, func(t *testing.T) {
			t.Parallel()
			exerciseTry(t, core.New(f), 4, 2, 300)
		})
	}
}

func TestTryLockStressCentralized(t *testing.T) {
	exerciseTry(t, baseline.NewCentralized(), 4, 2, 300)
}

// TestTryLockUncontended checks the immediate-success path with a zero
// timeout (single attempt, no backoff).
func TestTryLockUncontended(t *testing.T) {
	lock, err := NewLock(core.New(core.FLog), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, w := lock.Reader(0), lock.Writer(0)
	if !r.TryLock(0) {
		t.Fatal("reader TryLock failed on an idle lock")
	}
	r.Unlock()
	if !w.TryLock(0) {
		t.Fatal("writer TryLock failed on an idle lock")
	}
	w.Unlock()
	if !r.TryLock(0) {
		t.Fatal("reader TryLock failed after writer released")
	}
	r.Unlock()
}

// TestTryLockTimesOutAgainstHolder pins the failure path: with the
// opposite class parked in the CS, a bounded TryLock must return false in
// roughly the requested time instead of blocking.
func TestTryLockTimesOutAgainstHolder(t *testing.T) {
	lock, err := NewLock(core.New(core.FOne), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w := lock.Writer(0)
	w.Lock()
	start := time.Now()
	if lock.Reader(0).TryLock(10 * time.Millisecond) {
		t.Fatal("reader TryLock succeeded while a writer held the lock")
	}
	if lock.Writer(1).TryLock(10 * time.Millisecond) {
		t.Fatal("writer TryLock succeeded while another writer held the lock")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("bounded TryLocks took %v", elapsed)
	}
	w.Unlock()
	// The aborted attempts must not have corrupted the lock.
	r := lock.Reader(0)
	if !r.TryLock(time.Second) {
		t.Fatal("reader cannot acquire after writer released")
	}
	r.Unlock()
}

// TestTryLockNonAbortablePanics pins the API contract for algorithms
// without try-entry support.
func TestTryLockNonAbortablePanics(t *testing.T) {
	lock, err := NewLock(baseline.NewMutexRW(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lock.Abortable() {
		t.Fatal("mutex-rw claims abortable entry")
	}
	defer func() {
		if recover() == nil {
			t.Error("TryLock on a non-abortable lock did not panic")
		}
	}()
	lock.Reader(0).TryLock(0)
}
