package native

import (
	"fmt"

	"repro/internal/memmodel"
)

// Lock adapts any memmodel.Algorithm into an idiomatic handle-based
// reader-writer lock on real atomics. The paper's algorithms are
// slot-based: every participating goroutine owns a stable identity, so the
// API hands out per-identity Reader and Writer handles rather than exposing
// free-floating Lock/Unlock methods.
//
//	lock, _ := native.NewLock(core.New(core.FLog), 8, 2)
//	r := lock.Reader(0) // goroutine-owned
//	r.Lock()
//	... read shared state ...
//	r.Unlock()
type Lock struct {
	alg      memmodel.Algorithm
	backend  *Backend
	nReaders int
	nWriters int
}

// NewLock initializes alg for the given population on a fresh native
// backend.
func NewLock(alg memmodel.Algorithm, nReaders, nWriters int) (*Lock, error) {
	if nReaders < 0 || nWriters < 0 {
		return nil, fmt.Errorf("native: negative population %d/%d", nReaders, nWriters)
	}
	b := NewBackend()
	if err := alg.Init(b, nReaders, nWriters); err != nil {
		return nil, fmt.Errorf("native: init %s: %w", alg.Name(), err)
	}
	b.Seal()
	return &Lock{alg: alg, backend: b, nReaders: nReaders, nWriters: nWriters}, nil
}

// Name returns the wrapped algorithm's name.
func (l *Lock) Name() string { return l.alg.Name() }

// NumReaders returns the reader population size.
func (l *Lock) NumReaders() int { return l.nReaders }

// NumWriters returns the writer population size.
func (l *Lock) NumWriters() int { return l.nWriters }

// Reader returns the handle for reader identity rid in [0, NumReaders).
// A handle must be used by one goroutine at a time.
func (l *Lock) Reader(rid int) *Reader {
	if rid < 0 || rid >= l.nReaders {
		panic(fmt.Sprintf("native: reader id %d out of range [0,%d)", rid, l.nReaders))
	}
	return &Reader{lock: l, rid: rid, p: l.backend.Proc(rid)}
}

// Writer returns the handle for writer identity wid in [0, NumWriters).
// A handle must be used by one goroutine at a time.
func (l *Lock) Writer(wid int) *Writer {
	if wid < 0 || wid >= l.nWriters {
		panic(fmt.Sprintf("native: writer id %d out of range [0,%d)", wid, l.nWriters))
	}
	return &Writer{lock: l, wid: wid, p: l.backend.Proc(l.nReaders + wid)}
}

// Reader is a per-identity read-lock handle.
type Reader struct {
	lock *Lock
	rid  int
	p    memmodel.Proc
}

// Lock acquires shared (read) access.
func (r *Reader) Lock() { r.lock.alg.ReaderEnter(r.p, r.rid) }

// Unlock releases shared access.
func (r *Reader) Unlock() { r.lock.alg.ReaderExit(r.p, r.rid) }

// Writer is a per-identity write-lock handle.
type Writer struct {
	lock *Lock
	wid  int
	p    memmodel.Proc
}

// Lock acquires exclusive (write) access.
func (w *Writer) Lock() { w.lock.alg.WriterEnter(w.p, w.wid) }

// Unlock releases exclusive access.
func (w *Writer) Unlock() { w.lock.alg.WriterExit(w.p, w.wid) }
