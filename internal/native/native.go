// Package native executes the same algorithm code that runs in the CC
// simulator on real hardware: shared variables become cache-line padded
// sync/atomic words and awaits become spin loops that yield to the Go
// scheduler. It exists for the throughput experiments (E7) and for the
// example applications — RMRs are not observable here (the Go runtime and
// hardware prefetchers obscure coherence traffic, which is exactly why the
// quantitative experiments run on the simulator instead).
package native

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/memmodel"
)

// paddedWord keeps each shared variable on its own cache line so false
// sharing does not contaminate the throughput comparisons.
type paddedWord struct {
	v atomic.Uint64
	_ [7]uint64 //nolint:unused // padding to a 64-byte stride
}

// Backend is a memmodel.Allocator whose variables are real atomic words.
// Allocate everything (via the algorithm's Init), then create per-process
// handles with Proc.
type Backend struct {
	slots  []*paddedWord
	names  []string
	sealed bool
}

var _ memmodel.Allocator = (*Backend)(nil)

// NewBackend returns an empty backend.
func NewBackend() *Backend { return &Backend{} }

// Alloc implements memmodel.Allocator.
func (b *Backend) Alloc(name string, init uint64) memmodel.Var {
	if b.sealed {
		panic("native: Alloc after Seal")
	}
	w := &paddedWord{}
	w.v.Store(init)
	b.slots = append(b.slots, w)
	b.names = append(b.names, name)
	return memmodel.Var(len(b.slots) - 1)
}

// AllocN implements memmodel.Allocator.
func (b *Backend) AllocN(name string, n int, init uint64) []memmodel.Var {
	vs := make([]memmodel.Var, n)
	for i := range vs {
		vs[i] = b.Alloc(fmt.Sprintf("%s[%d]", name, i), init)
	}
	return vs
}

// Seal forbids further allocation; handles may be created and used only
// after sealing (allocation is not synchronized).
func (b *Backend) Seal() { b.sealed = true }

// Value peeks a variable (tests and assertions only).
func (b *Backend) Value(v memmodel.Var) uint64 { return b.slots[v].v.Load() }

// Proc returns the process handle for id. Each handle must be used by a
// single goroutine at a time.
func (b *Backend) Proc(id int) memmodel.Proc {
	if !b.sealed {
		panic("native: Proc before Seal")
	}
	return &proc{id: id, b: b}
}

type proc struct {
	id int
	b  *Backend
}

var _ memmodel.Proc = (*proc)(nil)

// ID implements memmodel.Proc.
func (p *proc) ID() int { return p.id }

// Read implements memmodel.Proc.
func (p *proc) Read(v memmodel.Var) uint64 { return p.b.slots[v].v.Load() }

// Write implements memmodel.Proc.
func (p *proc) Write(v memmodel.Var, x uint64) { p.b.slots[v].v.Store(x) }

// CAS implements memmodel.Proc. When the swap fails, the returned previous
// value is a fresh load rather than an atomic snapshot of the compare —
// sufficient for every algorithm here, which uses the value only to retry
// or to branch on the swapped flag.
func (p *proc) CAS(v memmodel.Var, old, newVal uint64) (uint64, bool) {
	if p.b.slots[v].v.CompareAndSwap(old, newVal) {
		return old, true
	}
	return p.b.slots[v].v.Load(), false
}

// FetchAdd implements memmodel.Proc.
func (p *proc) FetchAdd(v memmodel.Var, delta uint64) uint64 {
	return p.b.slots[v].v.Add(delta) - delta
}

// Await implements memmodel.Proc: local spin with periodic yields.
func (p *proc) Await(v memmodel.Var, pred memmodel.Pred) uint64 {
	for spins := 1; ; spins++ {
		if x := p.b.slots[v].v.Load(); pred(x) {
			return x
		}
		if spins%64 == 0 {
			runtime.Gosched()
		}
	}
}

// AwaitMulti implements memmodel.Proc.
func (p *proc) AwaitMulti(vars []memmodel.Var, pred memmodel.MultiPred) []uint64 {
	vals := make([]uint64, len(vars))
	for spins := 1; ; spins++ {
		for i, v := range vars {
			vals[i] = p.b.slots[v].v.Load()
		}
		if pred(vals) {
			return vals
		}
		if spins%64 == 0 {
			runtime.Gosched()
		}
	}
}

// Section implements memmodel.Proc; it is a no-op natively.
func (p *proc) Section(memmodel.Section) {}
