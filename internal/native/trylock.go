package native

import (
	"fmt"
	"time"

	"repro/internal/memmodel"
)

// Abortable reports whether the wrapped algorithm supports abortable entry
// (memmodel.TryAlgorithm); TryLock panics on handles of non-abortable
// locks.
func (l *Lock) Abortable() bool {
	_, ok := l.alg.(memmodel.TryAlgorithm)
	return ok
}

func (l *Lock) tryAlg() memmodel.TryAlgorithm {
	ta, ok := l.alg.(memmodel.TryAlgorithm)
	if !ok {
		panic(fmt.Sprintf("native: %s does not support abortable entry (TryLock)", l.alg.Name()))
	}
	return ta
}

// TryLock attempts to acquire shared access within the given time budget.
// A non-positive timeout makes exactly one bounded attempt. Otherwise
// failed attempts are retried under exponential backoff until the deadline
// passes; unlike Lock, the goroutine never waits on another process inside
// the lock protocol itself, so a stalled writer delays it by at most one
// attempt. Returns whether the lock was acquired (release with Unlock).
func (r *Reader) TryLock(timeout time.Duration) bool {
	ta := r.lock.tryAlg()
	return tryWithDeadline(func() bool { return ta.ReaderTryEnter(r.p, r.rid) }, timeout)
}

// TryLock attempts to acquire exclusive access within the given time
// budget; semantics mirror Reader.TryLock.
func (w *Writer) TryLock(timeout time.Duration) bool {
	ta := w.lock.tryAlg()
	return tryWithDeadline(func() bool { return ta.WriterTryEnter(w.p, w.wid) }, timeout)
}

// tryWithDeadline retries attempt under exponential backoff until it
// succeeds or timeout elapses. Backoff doubles from 1µs to a 512µs cap:
// long enough to drain contention bursts, short enough that the final
// attempt lands close to the deadline.
func tryWithDeadline(attempt func() bool, timeout time.Duration) bool {
	if attempt() {
		return true
	}
	if timeout <= 0 {
		return false
	}
	deadline := time.Now().Add(timeout)
	backoff := time.Microsecond
	const maxBackoff = 512 * time.Microsecond
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return false
		}
		if backoff > remaining {
			backoff = remaining
		}
		time.Sleep(backoff)
		if attempt() {
			return true
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}
