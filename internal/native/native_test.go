package native

import (
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/memmodel"
)

func TestBackendBasics(t *testing.T) {
	b := NewBackend()
	v := b.Alloc("v", 7)
	vs := b.AllocN("arr", 3, 1)
	b.Seal()
	p := b.Proc(0)

	if got := p.Read(v); got != 7 {
		t.Errorf("Read = %d, want 7", got)
	}
	p.Write(v, 9)
	if got := b.Value(v); got != 9 {
		t.Errorf("Value = %d, want 9", got)
	}
	if prev, ok := p.CAS(v, 9, 10); !ok || prev != 9 {
		t.Errorf("CAS success = (%d, %v)", prev, ok)
	}
	if _, ok := p.CAS(v, 9, 11); ok {
		t.Error("CAS with stale expected succeeded")
	}
	if prev := p.FetchAdd(vs[0], 5); prev != 1 {
		t.Errorf("FetchAdd prev = %d, want 1", prev)
	}
	if got := b.Value(vs[0]); got != 6 {
		t.Errorf("after FetchAdd = %d, want 6", got)
	}
	if p.ID() != 0 {
		t.Errorf("ID = %d", p.ID())
	}
	p.Section(memmodel.SecCS) // no-op must not panic
}

func TestAwaitNative(t *testing.T) {
	b := NewBackend()
	v := b.Alloc("v", 0)
	b.Seal()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := b.Proc(1)
		got := p.Await(v, func(x uint64) bool { return x == 3 })
		if got != 3 {
			t.Errorf("Await returned %d", got)
		}
	}()
	p := b.Proc(0)
	p.Write(v, 1)
	p.Write(v, 3)
	wg.Wait()
}

func TestAwaitMultiNative(t *testing.T) {
	b := NewBackend()
	a1 := b.Alloc("a", 0)
	a2 := b.Alloc("b", 0)
	b.Seal()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := b.Proc(1)
		vals := p.AwaitMulti([]memmodel.Var{a1, a2}, func(vs []uint64) bool {
			return vs[0] == 1 && vs[1] == 1
		})
		if vals[0] != 1 || vals[1] != 1 {
			t.Errorf("AwaitMulti = %v", vals)
		}
	}()
	p := b.Proc(0)
	p.Write(a1, 1)
	p.Write(a2, 1)
	wg.Wait()
}

func TestAllocAfterSealPanics(t *testing.T) {
	b := NewBackend()
	b.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Alloc("late", 0)
}

func TestProcBeforeSealPanics(t *testing.T) {
	b := NewBackend()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Proc(0)
}

// exercise runs a full native workload against a lock: writers make
// non-atomic multi-word updates, readers verify consistency. Run under
// -race this doubles as a happens-before check for the lock protocol.
func exercise(t *testing.T, alg memmodel.Algorithm, nReaders, nWriters, passages int) {
	t.Helper()
	lock, err := NewLock(alg, nReaders, nWriters)
	if err != nil {
		t.Fatal(err)
	}
	// Two plain (non-atomic) words that must always be equal under the
	// lock's protection.
	var x, y int
	var wg sync.WaitGroup
	for rid := 0; rid < nReaders; rid++ {
		h := lock.Reader(rid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < passages; i++ {
				h.Lock()
				if x != y {
					t.Errorf("reader saw torn update: x=%d y=%d", x, y)
				}
				h.Unlock()
			}
		}()
	}
	for wid := 0; wid < nWriters; wid++ {
		h := lock.Writer(wid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < passages; i++ {
				h.Lock()
				x++
				y++
				h.Unlock()
			}
		}()
	}
	wg.Wait()
	if want := nWriters * passages; x != want || y != want {
		t.Errorf("final x=%d y=%d, want %d (lost writer updates)", x, y, want)
	}
}

func TestNativeAF(t *testing.T) {
	for _, f := range []core.F{core.FOne, core.FLog, core.FSqrt, core.FLinear} {
		f := f
		t.Run("af-"+f.Name, func(t *testing.T) {
			t.Parallel()
			exercise(t, core.New(f), 4, 2, 200)
		})
	}
}

func TestNativeBaselines(t *testing.T) {
	algs := []memmodel.Algorithm{
		baseline.NewCentralized(),
		baseline.NewFlagArray(),
		baseline.NewPhaseFair(),
		baseline.NewMutexRW(),
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			t.Parallel()
			exercise(t, alg, 4, 2, 200)
		})
	}
}

func TestNativeReadersOnly(t *testing.T) {
	lock, err := NewLock(core.New(core.FLog), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for rid := 0; rid < 8; rid++ {
		h := lock.Reader(rid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Lock()
				h.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestLockHandleRangeChecks(t *testing.T) {
	lock, err := NewLock(core.New(core.FOne), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lock.Name() != "af-1" || lock.NumReaders() != 2 || lock.NumWriters() != 1 {
		t.Error("metadata wrong")
	}
	for _, fn := range []func(){
		func() { lock.Reader(-1) },
		func() { lock.Reader(2) },
		func() { lock.Writer(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for out-of-range handle")
				}
			}()
			fn()
		}()
	}
}

func TestNewLockNegativePopulation(t *testing.T) {
	if _, err := NewLock(core.New(core.FOne), -1, 1); err == nil {
		t.Fatal("negative population accepted")
	}
}

// TestNativeWriterPriorityWrapper runs the fairness composition on real
// goroutines under the race detector.
func TestNativeWriterPriorityWrapper(t *testing.T) {
	exercise(t, fairness.New(core.New(core.FLog)), 4, 2, 200)
}

// TestNativeMutexSubstrates runs the A_f WL ablations natively.
func TestNativeMutexSubstrates(t *testing.T) {
	for _, kind := range []core.MutexKind{core.MutexCLH, core.MutexTicket} {
		kind := kind
		t.Run(core.New(core.FLog, core.WithWriterMutex(kind)).Name(), func(t *testing.T) {
			t.Parallel()
			exercise(t, core.New(core.FLog, core.WithWriterMutex(kind)), 4, 2, 200)
		})
	}
}

// TestNativeCounterAblations runs the counter ablations natively.
func TestNativeCounterAblations(t *testing.T) {
	for _, kind := range []core.CounterKind{core.CounterCASWord, core.CounterCellArray} {
		kind := kind
		t.Run(core.NewWithCounter(core.FLog, kind).Name(), func(t *testing.T) {
			t.Parallel()
			exercise(t, core.NewWithCounter(core.FLog, kind), 4, 2, 200)
		})
	}
}

// TestNativeClassicBaselines runs the classic literature locks natively
// under the race detector.
func TestNativeClassicBaselines(t *testing.T) {
	algs := []memmodel.Algorithm{
		baseline.NewBRLock(),
		baseline.NewCourtoisR(),
		baseline.NewCourtoisW(),
	}
	for _, alg := range algs {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			t.Parallel()
			exercise(t, alg, 4, 2, 200)
		})
	}
}

// TestNativeQueueRW runs the task-fair queue lock natively under -race.
func TestNativeQueueRW(t *testing.T) {
	exercise(t, baseline.NewQueueRW(), 4, 2, 200)
}
