package parwork

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		got := Do(workers, 50, func(i int) int { return i * i })
		if len(got) != 50 {
			t.Fatalf("workers=%d: len=%d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	if got := Do(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("Do with 0 jobs = %v, want nil", got)
	}
	if got, err := DoErr(4, 0, func(i int) (int, error) { return i, nil }); err != nil || len(got) != 0 {
		t.Fatalf("DoErr with 0 jobs = %v, %v", got, err)
	}
}

func TestDoErrLowestIndexWins(t *testing.T) {
	errA := errors.New("a")
	for _, workers := range []int{1, 4} {
		_, err := DoErr(workers, 20, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 17:
				return 0, errors.New("b")
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: err=%v, want the index-3 error", workers, err)
		}
	}
}

func TestDoErrRunsEveryJob(t *testing.T) {
	var ran atomic.Int64
	_, err := DoErr(4, 20, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if ran.Load() != 20 {
		t.Fatalf("ran %d jobs, want all 20 (errors must not skew sibling results)", ran.Load())
	}
}

func TestDoScopedReusesStatePerWorker(t *testing.T) {
	for _, workers := range []int{1, 3} {
		var entered, exited atomic.Int64
		got := DoScoped(workers, 12,
			func() *int { entered.Add(1); s := 0; return &s },
			func(s *int) { exited.Add(1) },
			func(s *int, i int) int { *s++; return i },
		)
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: got[%d]=%d", workers, i, v)
			}
		}
		if entered.Load() != exited.Load() {
			t.Fatalf("workers=%d: enter/exit mismatch: %d vs %d", workers, entered.Load(), exited.Load())
		}
		if max := int64(workers); entered.Load() > max {
			t.Fatalf("workers=%d: %d scopes entered, want <= %d", workers, entered.Load(), max)
		}
	}
}

func TestDoPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if v := recover(); v == nil {
					t.Errorf("workers=%d: panic did not propagate", workers)
				} else if fmt.Sprint(v) != "boom" {
					t.Errorf("workers=%d: panic value %v", workers, v)
				}
			}()
			Do(workers, 8, func(i int) int {
				if i == 5 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

func TestWorkersAndDefault(t *testing.T) {
	t.Cleanup(func() { SetDefault(0) })
	SetDefault(0)
	if got := Default(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	SetDefault(7)
	if got := Workers(0); got != 7 {
		t.Fatalf("Workers(0) with default 7 = %d", got)
	}
	if got := Workers(-1); got != 7 {
		t.Fatalf("Workers(-1) with default 7 = %d", got)
	}
	SetDefault(-5)
	if got := Default(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default() after reset = %d", got)
	}
}
