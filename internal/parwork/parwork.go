// Package parwork is the deterministic parallel execution engine for the
// repository's sweeps. Every sweep in internal/spec, internal/fault,
// internal/experiments and internal/explore is a set of INDEPENDENT
// simulated executions — one per fault point, grid cell, seed or schedule
// subtree — whose results are aggregated afterwards. parwork fans those
// jobs out across a bounded worker pool and delivers results in canonical
// index order, so the parallel output is byte-identical to the serial
// output: job i writes exactly result slot i, no matter which worker runs
// it or when it finishes.
//
// Scheduling is cost-aware and work-stealing (see steal.go): callers may
// pass a CostHint describing each row's known shape, which seeds rows
// largest-first across per-worker deques and sizes claim chunks so cheap
// rows amortize claim overhead while expensive rows can be stolen
// individually. Hints change only wall clock, never results.
//
// The determinism contract is the caller's side of the bargain: each job
// must be a pure function of its index (fresh algorithm instance, fresh
// scheduler, fresh runner per job — never shared mutable state), because
// jobs run concurrently and in no particular order. The spec harness's
// sweep entry points uphold this by constructing everything per run and by
// forcing serial execution when a caller installs a shared trace Observer.
//
// This package deliberately lives OUTSIDE the simulated shared-memory
// discipline: it uses real goroutines and sync because it coordinates
// whole simulator executions, not simulated shared-memory steps. The
// rwlint memdiscipline analyzer's scope (lint.AlgorithmPackages) does not
// — and must not — include it; see internal/lint.
package parwork

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide default worker count; 0 means
// runtime.GOMAXPROCS(0). The cmd binaries set it from their -parallel
// flags.
var defaultWorkers atomic.Int64

// SetDefault sets the process-wide default worker count used when a sweep
// is invoked with no explicit parallelism (Workers(0)). n <= 0 restores
// the initial default, GOMAXPROCS.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Default returns the current default worker count.
func Default() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Workers normalizes a worker-count request: n > 0 is taken verbatim,
// anything else resolves to Default().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return Default()
}

// Do runs job(i) for every i in [0, n) across at most workers concurrent
// goroutines (Workers-normalized) and returns the results in index order.
// With one worker the jobs run serially, in order, on the calling
// goroutine; the output is identical either way for pure jobs. A panic in
// any job is re-raised on the calling goroutine after all workers stop.
func Do[T any](workers, n int, job func(i int) T) []T {
	return DoCost(workers, n, nil, job)
}

// DoCost is Do with a CostHint: rows are seeded largest-first across the
// worker deques and claimed in cost-sized chunks (see CostHint). The
// results are identical to Do's; only the schedule differs.
func DoCost[T any](workers, n int, cost CostHint, job func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	run(workers, n, cost, func(next func() (int, bool)) {
		for {
			i, ok := next()
			if !ok {
				return
			}
			out[i] = job(i)
		}
	})
	return out
}

// DoErr is Do for jobs that can fail. Every job runs regardless of other
// jobs' failures (results must not depend on scheduling), and the error of
// the LOWEST failing index is returned — the same error a serial loop that
// stops at the first failure would report. On error the results are
// discarded and nil is returned.
func DoErr[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	return DoErrCost(workers, n, nil, job)
}

// DoErrCost is DoErr with a CostHint (see DoCost).
func DoErrCost[T any](workers, n int, cost CostHint, job func(i int) (T, error)) ([]T, error) {
	type slot struct {
		v   T
		err error
	}
	slots := DoCost(workers, n, cost, func(i int) slot {
		v, err := job(i)
		return slot{v, err}
	})
	out := make([]T, n)
	for i := range slots {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
		out[i] = slots[i].v
	}
	return out, nil
}

// DoScoped is Do with per-worker scoped state: each worker calls enter
// once before its first job and exit once after its last, letting jobs
// reuse an expensive resource (typically a sim.Runner reset between
// executions) without any cross-worker sharing. The serial path (one
// worker) uses the same enter/job/exit sequence, so resource reuse is
// exercised identically at every worker count.
func DoScoped[S, T any](workers, n int, enter func() S, exit func(S), job func(s S, i int) T) []T {
	return DoScopedCost(workers, n, nil, enter, exit, job)
}

// DoScopedCost is DoScoped with a CostHint (see DoCost).
func DoScopedCost[S, T any](workers, n int, cost CostHint, enter func() S, exit func(S), job func(s S, i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	run(workers, n, cost, func(next func() (int, bool)) {
		s := enter()
		defer exit(s)
		for {
			i, ok := next()
			if !ok {
				return
			}
			out[i] = job(s, i)
		}
	})
	return out
}

// run executes the worker-loop body on a bounded pool of Workers(workers)
// goroutines (capped at n), one body invocation per worker. body draws job
// indices from its worker's claim function until it is exhausted; with one
// worker it runs on the calling goroutine with a plain sequential claim.
//
// A panic in any worker poisons the claim functions: the surviving workers
// finish only the job they are on and then drain, rather than claiming and
// running every outstanding index before the panic re-raises (fail-fast —
// per-row isolation is DoRobust's KeepGoing mode). Jobs that merely return
// errors (DoErr) do not poison anything: every job still runs, as DoErr's
// lowest-index-error contract requires.
func run(workers, n int, cost CostHint, body func(next func() (int, bool))) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	s := newScheduler(n, w, cost)
	var poisoned atomic.Bool
	guarded := func(k int) func() (int, bool) {
		next := s.claimer(k)
		return func() (int, bool) {
			if poisoned.Load() {
				return 0, false
			}
			return next()
		}
	}
	if w <= 1 {
		body(guarded(0))
		return
	}
	var wg sync.WaitGroup
	var panicked atomic.Pointer[panicValue]
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					poisoned.Store(true)
					panicked.CompareAndSwap(nil, &panicValue{v})
				}
			}()
			body(guarded(k))
		}(k)
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.v)
	}
}

// panicValue boxes a recovered panic so a nil-interface payload still
// round-trips through the atomic pointer.
type panicValue struct{ v any }
