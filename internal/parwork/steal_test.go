package parwork

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// stealHints are the adversarially uneven synthetic row shapes the
// determinism gates run under: a nil hint, uniform hints, one monster row
// at either end, monotone ramps in both directions, and hostile values
// (negative, overflow-adjacent) the scheduler must clamp rather than
// trust.
func stealHints(n int) []struct {
	name string
	cost CostHint
} {
	return []struct {
		name string
		cost CostHint
	}{
		{"nil", nil},
		{"uniform", func(int) int64 { return 7 }},
		{"giant-row-0", func(i int) int64 {
			if i == 0 {
				return 1 << 30
			}
			return 1
		}},
		{"giant-last-row", func(i int) int64 {
			if i == n-1 {
				return 1 << 30
			}
			return 1
		}},
		{"ascending", func(i int) int64 { return int64(i) }},
		{"descending", func(i int) int64 { return int64(n - i) }},
		{"negative", func(i int) int64 { return -int64(i) }},
		{"overflowing", func(int) int64 { return 1<<62 + 11 }},
	}
}

// stealWorkerCounts is the worker axis the scheduling tests sweep: serial,
// two, NumCPU and an oversubscribed count (more workers than this host has
// cores, and — for small n — more workers than rows).
func stealWorkerCounts() []int {
	return []int{1, 2, runtime.NumCPU(), 8}
}

// withStealing runs f with the process-wide stealing switch forced to
// enabled, restoring the previous state after.
func withStealing(t *testing.T, enabled bool, f func()) {
	t.Helper()
	prev := StealingEnabled()
	SetStealing(enabled)
	defer SetStealing(prev)
	f()
}

// TestDoCostByteIdentity is the scheduler determinism gate: under every
// adversarial hint, at every worker count, with stealing forced on and
// off, the merged output must be byte-identical to the serial run's.
func TestDoCostByteIdentity(t *testing.T) {
	const n = 97
	job := func(i int) string { return fmt.Sprintf("row-%d=%d", i, i*i) }
	for _, h := range stealHints(n) {
		want := DoCost(1, n, h.cost, job)
		for _, workers := range stealWorkerCounts() {
			for _, stealing := range []bool{true, false} {
				name := fmt.Sprintf("%s/workers=%d/stealing=%v", h.name, workers, stealing)
				withStealing(t, stealing, func() {
					got := DoCost(workers, n, h.cost, job)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s: out[%d] = %q, want %q", name, i, got[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestDoCostEveryIndexOnce verifies the chunked deques partition the index
// space exactly: every row runs exactly once, stealing on or off.
func TestDoCostEveryIndexOnce(t *testing.T) {
	const n = 211
	for _, h := range stealHints(n) {
		for _, stealing := range []bool{true, false} {
			withStealing(t, stealing, func() {
				ran := make([]atomic.Int32, n)
				DoCost(8, n, h.cost, func(i int) struct{} {
					ran[i].Add(1)
					return struct{}{}
				})
				for i := range ran {
					if c := ran[i].Load(); c != 1 {
						t.Fatalf("%s stealing=%v: row %d ran %d times", h.name, stealing, i, c)
					}
				}
			})
		}
	}
}

// TestSchedulerChunkInvariants inspects the seeded plan directly: the
// order is a permutation of [0, n), the chunks tile it disjointly, and a
// monster row gets a singleton chunk (expensive rows must remain
// individually stealable).
func TestSchedulerChunkInvariants(t *testing.T) {
	const n, workers = 100, 4
	giant := func(i int) int64 {
		if i == 42 {
			return 1 << 35
		}
		return 3
	}
	s := newScheduler(n, workers, giant)
	if len(s.order) != n {
		t.Fatalf("order holds %d positions, want %d", len(s.order), n)
	}
	seen := make([]bool, n)
	for _, row := range s.order {
		if seen[row] {
			t.Fatalf("row %d appears twice in the seeded order", row)
		}
		seen[row] = true
	}
	if s.order[0] != 42 {
		t.Fatalf("LPT order seeds row %d first, want the monster row 42", s.order[0])
	}

	covered := make([]int, n)
	for k := range s.deques {
		d := &s.deques[k]
		for _, c := range d.buf[d.head:d.tail] {
			if c.lo >= c.hi {
				t.Fatalf("worker %d holds empty chunk %+v", k, c)
			}
			for p := c.lo; p < c.hi; p++ {
				covered[p]++
			}
			if c.lo == 0 && c.hi-c.lo != 1 {
				t.Fatalf("monster row's chunk %+v is not a singleton", c)
			}
		}
	}
	for p, c := range covered {
		if c != 1 {
			t.Fatalf("position %d covered by %d chunks, want exactly 1", p, c)
		}
	}
}

// TestStatsAccounting locks in the counter bookkeeping: one run, n rows,
// and — because every seeded chunk is claimed exactly once, locally or by
// theft — local claims plus steals equals the chunk count.
func TestStatsAccounting(t *testing.T) {
	const n = 300
	ramp := func(i int) int64 { return int64(i%17 + 1) }
	withStealing(t, true, func() {
		before := ReadStats()
		DoCost(4, n, ramp, func(i int) int { return i })
		d := ReadStats().Sub(before)
		if d.Runs != 1 || d.Rows != n {
			t.Fatalf("delta %+v, want 1 run / %d rows", d, n)
		}
		if d.Chunks == 0 {
			t.Fatalf("parallel run built no chunks: %+v", d)
		}
		if d.LocalClaims+d.Steals != d.Chunks {
			t.Fatalf("claims (%d local + %d stolen) != %d chunks", d.LocalClaims, d.Steals, d.Chunks)
		}
	})

	// The serial path has no plan to account for: rows only.
	before := ReadStats()
	DoCost(1, n, ramp, func(i int) int { return i })
	d := ReadStats().Sub(before)
	if d.Runs != 1 || d.Rows != n || d.Chunks != 0 || d.LocalClaims != 0 || d.Steals != 0 {
		t.Fatalf("serial delta %+v, want rows only", d)
	}
}

// TestStealingOffNoSteals verifies the switch: with stealing disabled the
// run still completes every row, records zero steals, and claims exactly
// its chunks locally.
func TestStealingOffNoSteals(t *testing.T) {
	const n = 120
	withStealing(t, false, func() {
		before := ReadStats()
		var ran atomic.Int64
		DoCost(4, n, func(i int) int64 { return int64(n - i) }, func(i int) int {
			ran.Add(1)
			return i
		})
		d := ReadStats().Sub(before)
		if ran.Load() != n {
			t.Fatalf("ran %d rows, want %d", ran.Load(), n)
		}
		if d.Steals != 0 || d.IdleProbes != 0 {
			t.Fatalf("stealing disabled but delta records %d steals / %d probes", d.Steals, d.IdleProbes)
		}
		if d.LocalClaims != d.Chunks {
			t.Fatalf("local claims %d != chunks %d with stealing off", d.LocalClaims, d.Chunks)
		}
	})
}

// TestDoErrCostLowestIndexWins verifies error precedence is by row index,
// not schedule order: a cost hint that seeds high indices first must not
// promote their errors over a lower-index failure.
func TestDoErrCostLowestIndexWins(t *testing.T) {
	const n = 50
	reversed := func(i int) int64 { return int64(i + 1) } // seeds row n-1 first
	for _, workers := range stealWorkerCounts() {
		for _, stealing := range []bool{true, false} {
			withStealing(t, stealing, func() {
				_, err := DoErrCost(workers, n, reversed, func(i int) (int, error) {
					if i == 7 || i == 43 {
						return 0, fmt.Errorf("row %d failed", i)
					}
					return i, nil
				})
				if err == nil || err.Error() != "row 7 failed" {
					t.Fatalf("workers=%d stealing=%v: err = %v, want row 7's", workers, stealing, err)
				}
			})
		}
	}
}

// TestDoCostPanicPoisons verifies fail-fast panic propagation survives the
// scheduler rewrite under a skewed hint.
func TestDoCostPanicPoisons(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate through DoCost")
		}
	}()
	DoCost(4, 60, func(i int) int64 { return int64(60 - i) }, func(i int) int {
		if i == 13 {
			panic("row 13 exploded")
		}
		return i
	})
}

// TestDoRobustCostInterruptAndResume is the stealing-era resume gate:
// DoRobust with a cost hint, interrupted mid-run and resumed against the
// same sink, must produce output byte-identical to an uninterrupted
// serial run — the resume's scheduler sees only the pending rows, with
// the hint composed over them.
func TestDoRobustCostInterruptAndResume(t *testing.T) {
	const n = 40
	skew := func(i int) int64 {
		if i%9 == 0 {
			return 1 << 20
		}
		return int64(i + 1)
	}
	want, _, err := DoRobust(Options{Workers: 1, Cost: skew}, n, JSONCodec[int](), noScope, noExit, square, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		for _, stealing := range []bool{true, false} {
			t.Run(fmt.Sprintf("workers=%d/stealing=%v", workers, stealing), func(t *testing.T) {
				withStealing(t, stealing, func() {
					sink := newMemSink()
					stop := NewStopper()
					_, rep, err := DoRobust(
						Options{Workers: workers, Sink: sink, Stop: stop, Cost: skew,
							AfterRow: func(done int) {
								if done >= 5 {
									stop.Stop()
								}
							}},
						n, JSONCodec[int](), noScope, noExit, square, nil)
					var ie *InterruptedError
					if !errors.As(err, &ie) {
						t.Fatalf("err = %v, want *InterruptedError", err)
					}
					if ie.Done >= n || sink.len() != rep.Done() {
						t.Fatalf("interrupt bookkeeping: ie=%+v sink=%d", ie, sink.len())
					}

					out, rep2, err := DoRobust(Options{Workers: workers, Sink: sink, Cost: skew},
						n, JSONCodec[int](), noScope, noExit, square, nil)
					if err != nil {
						t.Fatal(err)
					}
					if rep2.Restored != ie.Done {
						t.Errorf("resume restored %d rows, checkpoint held %d", rep2.Restored, ie.Done)
					}
					for i := range want {
						if out[i] != want[i] {
							t.Fatalf("out[%d] = %d after resume, want %d", i, out[i], want[i])
						}
					}
				})
			})
		}
	}
}
