package parwork

// This file is the robust execution mode of the sweep engine: DoRobust is
// DoScoped plus the three behaviors long sweeps need to survive the real
// world — durable progress (a Sink checkpoints each completed slot, and a
// resumed run restores those slots instead of recomputing them), cooperative
// cancellation (a Stopper makes workers stop claiming new rows and drain,
// leaving a flushed checkpoint behind), and per-row failure isolation
// (KeepGoing turns a panicking or wedged row into a typed RowFailure in the
// report instead of aborting the sweep). The canonical index-slot merge is
// unchanged: row i fills slot i whether it was computed now, computed by a
// previous run and restored, or replaced by onFailure — so a resumed sweep
// is byte-identical to an uninterrupted one.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Codec encodes row results for the Sink and decodes them on restore. The
// decoded value must be indistinguishable from the computed one as far as
// the caller's rendering is concerned — that is the resume-determinism
// contract, and internal/spec's wire codecs exist to uphold it.
type Codec[T any] struct {
	Encode func(T) ([]byte, error)
	Decode func([]byte) (T, error)
}

// JSONCodec is the Codec for row types whose fields round-trip through
// encoding/json unchanged (or that implement json.Marshaler/Unmarshaler to
// make it so).
func JSONCodec[T any]() Codec[T] {
	return Codec[T]{
		Encode: func(v T) ([]byte, error) { return json.Marshal(v) },
		Decode: func(p []byte) (T, error) {
			var v T
			err := json.Unmarshal(p, &v)
			return v, err
		},
	}
}

// Sink is the durable store DoRobust records completed rows into.
// internal/checkpoint.Section implements it. Record and Restore are called
// concurrently from worker goroutines; Flush may be called concurrently
// with Record. Failed rows are never recorded — a resumed run retries them.
type Sink interface {
	// Restore returns the payload recorded for row i by a previous run.
	Restore(i int) ([]byte, bool)
	// Record stores the payload of newly completed row i.
	Record(i int, payload []byte) error
	// Flush persists everything recorded so far.
	Flush() error
}

// Stopper requests cooperative cancellation: once stopped, workers claim no
// further rows, finish the row in hand, and DoRobust returns an
// *InterruptedError after a final flush. A nil *Stopper is never stopped.
// Stop is safe to call from a signal handler goroutine.
type Stopper struct{ stopped atomic.Bool }

// NewStopper returns a fresh, unstopped Stopper.
func NewStopper() *Stopper { return &Stopper{} }

// Stop requests cancellation. Idempotent.
func (s *Stopper) Stop() { s.stopped.Store(true) }

// Stopped reports whether Stop has been called. Nil-safe.
func (s *Stopper) Stopped() bool { return s != nil && s.stopped.Load() }

// RowFailure describes one row that did not produce a result: its job
// panicked, or exceeded the row deadline. It is the per-row error type the
// KeepGoing report lists and the fail-fast row-timeout path returns.
type RowFailure struct {
	// Index is the row's slot in the sweep.
	Index int
	// Info is the caller's description of the row (Options.RowInfo),
	// typically the fault point, "" if none was provided.
	Info string
	// PanicValue is the rendered panic payload; "" for a timeout.
	PanicValue string
	// Stuck marks a row that exceeded Options.RowTimeout. Its goroutine
	// could not be killed and may still be running; Stack holds the
	// all-goroutine dump captured at the deadline for diagnosis.
	Stuck bool
	// Elapsed is the deadline the row exceeded (Stuck only).
	Elapsed time.Duration
	// Stack is the stack trace: the panicking goroutine's for a panic,
	// an all-goroutine dump for a stuck row. It is deliberately kept out
	// of Error() so reports that render errors stay stable and readable;
	// diagnostic surfaces print it separately.
	Stack string

	// panicAny preserves the original panic payload so fail-fast can
	// re-raise it unchanged.
	panicAny any
}

func (f *RowFailure) Error() string {
	where := fmt.Sprintf("row %d", f.Index)
	if f.Info != "" {
		where += " (" + f.Info + ")"
	}
	if f.Stuck {
		return fmt.Sprintf("%s: stuck: no result after %v of wall clock", where, f.Elapsed)
	}
	return fmt.Sprintf("%s: panic: %s", where, f.PanicValue)
}

// InterruptedError reports a sweep stopped by its Stopper before every row
// completed. The rows that did complete are flushed to the Sink; rerunning
// with the same configuration and the same checkpoint resumes from them.
type InterruptedError struct {
	// Done is the number of rows with durable results (restored plus
	// newly completed); Total is the sweep size.
	Done, Total int
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("sweep interrupted: %d/%d rows complete", e.Done, e.Total)
}

// Options configures DoRobust. The zero value (plus a worker count) is
// plain DoScoped behavior: no sink, no cancellation, fail-fast, no row
// deadline.
type Options struct {
	// Workers is the pool size, Workers-normalized.
	Workers int
	// KeepGoing isolates row failures: a panicking or timed-out row
	// becomes a RowFailure in the Report and the sweep continues.
	// Default (false) is fail-fast: a panic re-raises on the caller
	// after the pool drains and a final flush, a timeout returns the
	// *RowFailure as the error.
	KeepGoing bool
	// RowTimeout, when positive, is the wall-clock deadline for one row.
	// A row that exceeds it is abandoned (its goroutine cannot be killed
	// and is leaked along with its scope) and reported as a Stuck
	// RowFailure; the worker continues on a fresh scope.
	RowTimeout time.Duration
	// Stop, when non-nil, is polled before each claim.
	Stop *Stopper
	// Sink, when non-nil, restores previously completed rows before the
	// sweep starts and records each newly completed row.
	Sink Sink
	// FlushEvery is how many newly completed rows may accumulate between
	// periodic Sink flushes; <= 0 means 64. A final flush always happens.
	FlushEvery int
	// Cost, when non-nil, is the scheduling hint for row i (see
	// CostHint): pending rows are seeded largest-first across the worker
	// deques and claimed in cost-sized chunks. Restored rows never rerun,
	// so on a resume the hint is consulted only for the rows still
	// pending. Hints change the schedule, never the results.
	Cost CostHint
	// RowInfo, when non-nil, describes row i for failure reports (e.g.
	// the fault point).
	RowInfo func(i int) string
	// AfterRow, when non-nil, observes progress: it is called after each
	// row computed in this run (success or KeepGoing failure) with the
	// cumulative count. Called concurrently from worker goroutines.
	AfterRow func(done int)
}

// Report describes what a DoRobust call actually did.
type Report struct {
	// Total is the sweep size.
	Total int
	// Restored is the number of rows taken from the Sink.
	Restored int
	// Computed is the number of rows executed in this run, including
	// KeepGoing failures.
	Computed int
	// Failures lists KeepGoing row failures in index order.
	Failures []*RowFailure
	// Interrupted marks a run stopped before all rows were attempted.
	Interrupted bool
}

// Done is the number of rows with durable results.
func (r *Report) Done() int { return r.Restored + r.Computed - len(r.Failures) }

// DoRobust is DoScoped with restore/record, cancellation, per-row failure
// isolation and a per-row deadline, per opt. Row i's result lands in slot i
// of the returned slice regardless of which run computed it; for pure jobs
// and faithful codecs the output is byte-identical across worker counts and
// across interrupt/resume splits.
//
// onFailure supplies the slot value for a KeepGoing row failure (so the
// caller can embed the RowFailure in its outcome type); it may be nil only
// when KeepGoing is false.
//
// On interruption the error is *InterruptedError and the slice holds the
// partial results. On a fail-fast timeout the error is the *RowFailure. A
// fail-fast panic re-raises the original panic value on the caller — after
// the pool drains and completed rows are flushed, so even a crash loses no
// progress.
func DoRobust[S, T any](
	opt Options,
	n int,
	codec Codec[T],
	enter func() S,
	exit func(S),
	job func(s S, i int) T,
	onFailure func(i int, f *RowFailure) T,
) ([]T, *Report, error) {
	rep := &Report{Total: n}
	if n <= 0 {
		return nil, rep, nil
	}
	out := make([]T, n)

	// Restore phase: decode previously completed slots, leaving the rest
	// as the pending work list (in index order — claims preserve it).
	pending := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if opt.Sink == nil {
			pending = append(pending, i)
			continue
		}
		payload, ok := opt.Sink.Restore(i)
		if !ok {
			pending = append(pending, i)
			continue
		}
		v, err := codec.Decode(payload)
		if err != nil {
			return nil, rep, fmt.Errorf("parwork: restore row %d: %w", i, err)
		}
		out[i] = v
		rep.Restored++
	}

	flushEvery := opt.FlushEvery
	if flushEvery <= 0 {
		flushEvery = 64
	}

	var (
		computed   atomic.Int64 // rows executed this run (incl. failures)
		succeeded  atomic.Int64 // rows that produced a durable result
		unflushed  atomic.Int64 // successes since the last periodic flush
		poisoned   atomic.Bool  // stop claiming: fatal error or panic
		fatalPanic atomic.Pointer[panicValue]
		fatalErr   atomic.Pointer[errBox]

		failMu   sync.Mutex
		failures []*RowFailure
	)
	setFatal := func(err error) {
		fatalErr.CompareAndSwap(nil, &errBox{err})
		poisoned.Store(true)
	}
	info := func(i int) string {
		if opt.RowInfo == nil {
			return ""
		}
		return opt.RowInfo(i)
	}
	progressed := func() {
		done := int(computed.Add(1))
		if opt.AfterRow != nil {
			opt.AfterRow(done)
		}
	}

	// runRecovered executes one row, converting a panic into a RowFailure.
	runRecovered := func(s S, i int) (v T, f *RowFailure) {
		defer func() {
			if p := recover(); p != nil {
				buf := make([]byte, 64<<10)
				buf = buf[:runtime.Stack(buf, false)]
				f = &RowFailure{
					Index:      i,
					Info:       info(i),
					PanicValue: fmt.Sprintf("%v", p),
					Stack:      string(buf),
					panicAny:   p,
				}
			}
		}()
		v = job(s, i)
		return
	}

	// runRow executes row i on the worker's scope (replacing *scope if the
	// row wedges past the deadline), stores and records a successful
	// result, and returns the failure otherwise.
	runRow := func(scope *S, i int) *RowFailure {
		var v T
		var f *RowFailure
		if opt.RowTimeout <= 0 {
			v, f = runRecovered(*scope, i)
		} else {
			type result struct {
				v T
				f *RowFailure
			}
			ch := make(chan result, 1)
			// 0 = pending, 1 = delivered by child, 2 = abandoned by
			// worker. The CAS decides who owns the child's scope.
			var state atomic.Int32
			child := *scope
			go func() {
				cv, cf := runRecovered(child, i)
				if state.CompareAndSwap(0, 1) {
					ch <- result{cv, cf}
				} else {
					// Abandoned: the worker moved on with a fresh
					// scope; this goroutine releases the old one.
					exit(child)
				}
			}()
			timer := time.NewTimer(opt.RowTimeout)
			select {
			case r := <-ch:
				timer.Stop()
				v, f = r.v, r.f
			case <-timer.C:
				if state.CompareAndSwap(0, 2) {
					buf := make([]byte, 256<<10)
					buf = buf[:runtime.Stack(buf, true)]
					f = &RowFailure{
						Index:   i,
						Info:    info(i),
						Stuck:   true,
						Elapsed: opt.RowTimeout,
						Stack:   string(buf),
					}
					*scope = enter()
				} else {
					// The child delivered in the race window.
					r := <-ch
					v, f = r.v, r.f
				}
			}
		}
		if f != nil {
			return f
		}
		out[i] = v
		if opt.Sink != nil {
			payload, err := codec.Encode(v)
			if err != nil {
				setFatal(fmt.Errorf("parwork: encode row %d: %w", i, err))
				return nil
			}
			if err := opt.Sink.Record(i, payload); err != nil {
				setFatal(fmt.Errorf("parwork: record row %d: %w", i, err))
				return nil
			}
			if unflushed.Add(1)%int64(flushEvery) == 0 {
				if err := opt.Sink.Flush(); err != nil {
					setFatal(fmt.Errorf("parwork: flush: %w", err))
					return nil
				}
			}
		}
		succeeded.Add(1)
		progressed()
		return nil
	}

	// The pending rows run on the cost-aware work-stealing scheduler,
	// exactly like the non-robust fan-outs: the caller's hint is composed
	// over the pending list (a resumed run schedules only what is left).
	w := Workers(opt.Workers)
	if w > len(pending) {
		w = len(pending)
	}
	var pendingCost CostHint
	if opt.Cost != nil {
		pendingCost = func(k int) int64 { return opt.Cost(pending[k]) }
	}
	schd := newScheduler(len(pending), w, pendingCost)

	work := func(worker int) {
		next := schd.claimer(worker)
		scope := enter()
		defer func() { exit(scope) }()
		for {
			if poisoned.Load() || opt.Stop.Stopped() {
				return
			}
			k, ok := next()
			if !ok {
				return
			}
			i := pending[k]
			f := runRow(&scope, i)
			if f == nil {
				continue
			}
			failMu.Lock()
			failures = append(failures, f)
			failMu.Unlock()
			if opt.KeepGoing {
				if onFailure != nil {
					out[i] = onFailure(i, f)
				}
				progressed()
				continue
			}
			// Fail-fast: poison the claim counter so the pool drains,
			// then surface the failure after the final flush.
			if f.panicAny != nil {
				fatalPanic.CompareAndSwap(nil, &panicValue{f.panicAny})
				poisoned.Store(true)
			} else {
				setFatal(f)
			}
			return
		}
	}
	runWorker := func(worker int) {
		defer func() {
			// enter/exit are harness code and should not panic; if one
			// does, surface it like a fail-fast row panic.
			if v := recover(); v != nil {
				fatalPanic.CompareAndSwap(nil, &panicValue{v})
				poisoned.Store(true)
			}
		}()
		work(worker)
	}

	if w <= 1 {
		if len(pending) > 0 {
			runWorker(0)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func(k int) {
				defer wg.Done()
				runWorker(k)
			}(k)
		}
		wg.Wait()
	}

	// Final flush, even on the way out of a fatal failure: completed rows
	// are durable no matter how the sweep ends.
	var flushErr error
	if opt.Sink != nil {
		flushErr = opt.Sink.Flush()
	}

	sort.Slice(failures, func(a, b int) bool { return failures[a].Index < failures[b].Index })
	rep.Computed = int(computed.Load())
	rep.Failures = failures

	if pv := fatalPanic.Load(); pv != nil {
		panic(pv.v)
	}
	if eb := fatalErr.Load(); eb != nil {
		return nil, rep, eb.err
	}
	if flushErr != nil {
		return nil, rep, fmt.Errorf("parwork: final flush: %w", flushErr)
	}
	if opt.Stop.Stopped() && rep.Restored+rep.Computed < n {
		rep.Interrupted = true
		return out, rep, &InterruptedError{Done: rep.Done(), Total: n}
	}
	return out, rep, nil
}

// errBox boxes an error for atomic first-wins publication.
type errBox struct{ err error }
