package parwork

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// memSink is an in-memory Sink for tests.
type memSink struct {
	mu      sync.Mutex
	rows    map[int][]byte
	flushes int
}

func newMemSink() *memSink { return &memSink{rows: map[int][]byte{}} }

func (s *memSink) Restore(i int) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.rows[i]
	return p, ok
}

func (s *memSink) Record(i int, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows[i] = append([]byte(nil), payload...)
	return nil
}

func (s *memSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushes++
	return nil
}

func (s *memSink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rows)
}

// noScope is the trivial scope for jobs that need none.
func noScope() struct{}            { return struct{}{} }
func noExit(struct{})              {}
func square(_ struct{}, i int) int { return i * i }

func TestDoRobustPlain(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, rep, err := DoRobust(Options{Workers: workers}, 10, JSONCodec[int](), noScope, noExit, square, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
		if rep.Computed != 10 || rep.Restored != 0 || rep.Done() != 10 {
			t.Fatalf("workers=%d: report %+v", workers, rep)
		}
	}
}

func TestDoRobustRestoreSkipsCompletedRows(t *testing.T) {
	sink := newMemSink()
	for _, i := range []int{0, 3, 7} {
		if err := sink.Record(i, []byte(fmt.Sprint(i*i))); err != nil {
			t.Fatal(err)
		}
	}
	var ran atomic.Int64
	out, rep, err := DoRobust(Options{Workers: 4, Sink: sink}, 10, JSONCodec[int](), noScope, noExit,
		func(_ struct{}, i int) int {
			ran.Add(1)
			return i * i
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 3 || rep.Computed != 7 {
		t.Fatalf("report %+v, want 3 restored / 7 computed", rep)
	}
	if ran.Load() != 7 {
		t.Fatalf("job ran %d times, want 7", ran.Load())
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if sink.len() != 10 {
		t.Fatalf("sink holds %d rows, want 10", sink.len())
	}
}

func TestDoRobustRestoreCorruptPayload(t *testing.T) {
	sink := newMemSink()
	if err := sink.Record(2, []byte("not an int")); err != nil {
		t.Fatal(err)
	}
	_, _, err := DoRobust(Options{Workers: 2, Sink: sink}, 5, JSONCodec[int](), noScope, noExit, square, nil)
	if err == nil || !strings.Contains(err.Error(), "restore row 2") {
		t.Fatalf("err = %v, want restore failure for row 2", err)
	}
}

func TestDoRobustKeepGoingPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sink := newMemSink()
			out, rep, err := DoRobust(
				Options{Workers: workers, KeepGoing: true, Sink: sink,
					RowInfo: func(i int) string { return fmt.Sprintf("point %d", i) }},
				10, JSONCodec[int](), noScope, noExit,
				func(_ struct{}, i int) int {
					if i == 4 {
						panic("injected row failure")
					}
					return i * i
				},
				func(i int, f *RowFailure) int { return -1 },
			)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Failures) != 1 {
				t.Fatalf("failures = %v, want exactly one", rep.Failures)
			}
			f := rep.Failures[0]
			if f.Index != 4 || f.Stuck || f.PanicValue != "injected row failure" {
				t.Errorf("failure = %+v", f)
			}
			if f.Info != "point 4" {
				t.Errorf("Info = %q, want the RowInfo rendering", f.Info)
			}
			if !strings.Contains(f.Stack, "robust_test") {
				t.Errorf("Stack does not point at the panicking job:\n%s", f.Stack)
			}
			if got := f.Error(); !strings.Contains(got, "row 4") || !strings.Contains(got, "injected row failure") {
				t.Errorf("Error() = %q", got)
			}
			if strings.Contains(f.Error(), "robust_test") {
				t.Errorf("Error() leaks the stack trace: %q", f.Error())
			}
			if out[4] != -1 {
				t.Errorf("out[4] = %d, want the onFailure placeholder", out[4])
			}
			for i, v := range out {
				if i != 4 && v != i*i {
					t.Errorf("out[%d] = %d; healthy rows must be unaffected", i, v)
				}
			}
			if _, ok := sink.Restore(4); ok {
				t.Error("failed row was recorded to the sink; resume would skip retrying it")
			}
			if rep.Done() != 9 || rep.Computed != 10 {
				t.Errorf("report %+v", rep)
			}
		})
	}
}

func TestDoRobustFailFastPanicFlushesThenRepanics(t *testing.T) {
	sink := newMemSink()
	didPanic := func() (v any) {
		defer func() { v = recover() }()
		DoRobust(Options{Workers: 1, Sink: sink}, 10, JSONCodec[int](), noScope, noExit,
			func(_ struct{}, i int) int {
				if i == 3 {
					panic("boom")
				}
				return i
			}, nil)
		return nil
	}()
	if didPanic != "boom" {
		t.Fatalf("recovered %v, want the original panic value", didPanic)
	}
	// Rows 0..2 completed before the serial panic and must be durable.
	for i := 0; i < 3; i++ {
		if _, ok := sink.Restore(i); !ok {
			t.Errorf("row %d lost despite completing before the panic", i)
		}
	}
	if sink.flushes == 0 {
		t.Error("no final flush before the re-panic")
	}
}

func TestDoRobustFailFastTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, _, err := DoRobust(Options{Workers: 2, RowTimeout: 50 * time.Millisecond}, 6, JSONCodec[int](), noScope, noExit,
		func(_ struct{}, i int) int {
			if i == 1 {
				<-block
			}
			return i
		}, nil)
	var rf *RowFailure
	if !errors.As(err, &rf) {
		t.Fatalf("err = %v, want *RowFailure", err)
	}
	if rf.Index != 1 || !rf.Stuck || rf.Elapsed != 50*time.Millisecond {
		t.Errorf("failure = %+v", rf)
	}
	if rf.Stack == "" {
		t.Error("stuck row captured no stack dump")
	}
}

func TestDoRobustKeepGoingStuckRowReplacesScope(t *testing.T) {
	var enters, exits atomic.Int64
	block := make(chan struct{})
	out, rep, err := DoRobust(
		Options{Workers: 1, KeepGoing: true, RowTimeout: 50 * time.Millisecond},
		5, JSONCodec[int](),
		func() int { return int(enters.Add(1)) },
		func(int) { exits.Add(1) },
		func(scope int, i int) int {
			if i == 2 {
				<-block
			}
			return i * 10
		},
		func(i int, f *RowFailure) int { return -1 },
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 1 || rep.Failures[0].Index != 2 || !rep.Failures[0].Stuck {
		t.Fatalf("failures = %+v", rep.Failures)
	}
	if out[2] != -1 || out[4] != 40 {
		t.Fatalf("out = %v; rows after the stuck one must still run", out)
	}
	// The worker abandoned its wedged scope and entered a fresh one.
	if enters.Load() != 2 {
		t.Errorf("enter called %d times, want 2 (initial + replacement)", enters.Load())
	}
	// Unblock the abandoned goroutine: it must release the old scope
	// itself, balancing the books.
	close(block)
	deadline := time.After(2 * time.Second)
	for exits.Load() != enters.Load() {
		select {
		case <-deadline:
			t.Fatalf("enters=%d exits=%d never balanced", enters.Load(), exits.Load())
		case <-time.After(time.Millisecond):
		}
	}
}

func TestDoRobustInterruptAndResume(t *testing.T) {
	const n = 40
	want, _, err := DoRobust(Options{Workers: 1}, n, JSONCodec[int](), noScope, noExit, square, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sink := newMemSink()
			stop := NewStopper()
			_, rep, err := DoRobust(
				Options{Workers: workers, Sink: sink, Stop: stop, FlushEvery: 4,
					AfterRow: func(done int) {
						if done >= 5 {
							stop.Stop()
						}
					}},
				n, JSONCodec[int](), noScope, noExit, square, nil)
			var ie *InterruptedError
			if !errors.As(err, &ie) {
				t.Fatalf("err = %v, want *InterruptedError", err)
			}
			if !rep.Interrupted || ie.Total != n || ie.Done != rep.Done() {
				t.Errorf("rep=%+v ie=%+v", rep, ie)
			}
			if ie.Done >= n {
				t.Fatalf("interrupted run claims all %d rows done", n)
			}
			if sink.len() != rep.Done() {
				t.Errorf("sink holds %d rows, report says %d durable", sink.len(), rep.Done())
			}

			// Resume against the same sink: restored + computed covers
			// everything and the merged output is identical.
			out2, rep2, err := DoRobust(Options{Workers: workers, Sink: sink}, n, JSONCodec[int](), noScope, noExit, square, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rep2.Restored != ie.Done {
				t.Errorf("resume restored %d rows, checkpoint held %d", rep2.Restored, ie.Done)
			}
			for i := range want {
				if out2[i] != want[i] {
					t.Fatalf("out[%d] = %d after resume, want %d", i, out2[i], want[i])
				}
			}
		})
	}
}

func TestDoRobustStopBeforeStartComputesNothing(t *testing.T) {
	stop := NewStopper()
	stop.Stop()
	var ran atomic.Int64
	_, rep, err := DoRobust(Options{Workers: 4, Stop: stop}, 10, JSONCodec[int](), noScope, noExit,
		func(_ struct{}, i int) int { ran.Add(1); return i }, nil)
	var ie *InterruptedError
	if !errors.As(err, &ie) || ie.Done != 0 {
		t.Fatalf("err = %v, want InterruptedError with 0 done", err)
	}
	if ran.Load() != 0 || rep.Computed != 0 {
		t.Fatalf("stopped pool still ran %d rows", ran.Load())
	}
}

// TestRunPoisonDrainsPromptly locks in the fail-fast fix: after one worker
// panics, the survivors stop claiming new indices instead of running every
// outstanding job.
func TestRunPoisonDrainsPromptly(t *testing.T) {
	const n, workers = 100, 4
	var ran atomic.Int64
	started := make(chan struct{})
	func() {
		defer func() { recover() }()
		Do(workers, n, func(i int) int {
			if i == 0 {
				close(started)
				panic("poison")
			}
			<-started
			// Give the panic time to poison the counter before this
			// worker claims again.
			time.Sleep(5 * time.Millisecond)
			ran.Add(1)
			return i
		})
	}()
	if got := ran.Load(); got > 3*workers {
		t.Errorf("%d of %d jobs ran after the panic; the pool did not drain", got, n)
	}
}

// TestDoErrMixedPanicAndError: a panic wins over row errors — it re-raises
// with its original value rather than being swallowed into the error path.
func TestDoErrMixedPanicAndError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		v := func() (v any) {
			defer func() { v = recover() }()
			_, err := DoErr(workers, 12, func(i int) (int, error) {
				switch i {
				case 3:
					return 0, errors.New("row error")
				case 7:
					panic("row panic")
				}
				return i, nil
			})
			t.Errorf("workers=%d: DoErr returned (err=%v) instead of panicking", workers, err)
			return nil
		}()
		if v != "row panic" {
			t.Errorf("workers=%d: recovered %v, want the original panic value", workers, v)
		}
	}
}
