package parwork

// Scheduler observability: process-wide counters the work-stealing
// engine bumps as it hands out rows. rwbench's -scaling mode snapshots
// them around each measured configuration (ReadStats deltas) so the
// recorded scaling curve carries *why* it scaled — how many chunks were
// claimed locally, how many were stolen, how often a would-be thief
// found every deque empty.
//
// The counters use sync/atomic by design: parwork coordinates whole
// simulator executions with real goroutines and real synchronization,
// and deliberately lives outside the simulated shared-memory discipline
// that rwlint's memdiscipline analyzer enforces (see the scope pin in
// internal/lint/scope_test.go).

import "sync/atomic"

var (
	statRuns        atomic.Int64
	statRows        atomic.Int64
	statChunks      atomic.Int64
	statLocalClaims atomic.Int64
	statSteals      atomic.Int64
	statIdleProbes  atomic.Int64
)

// Stats is a snapshot of the scheduler counters. All fields are
// cumulative since process start or the last ResetStats.
type Stats struct {
	// Runs counts fan-outs (one per Do/DoErr/DoScoped/DoRobust call,
	// serial or parallel).
	Runs int64 `json:"runs"`
	// Rows counts rows handed to the engine across all fan-outs.
	Rows int64 `json:"rows"`
	// Chunks counts claim units built by the cost-aware chunker
	// (parallel fan-outs only; a serial run claims rows directly).
	Chunks int64 `json:"chunks"`
	// LocalClaims counts chunks a worker popped from its own deque.
	LocalClaims int64 `json:"local_claims"`
	// Steals counts chunks a worker took from another worker's deque.
	Steals int64 `json:"steals"`
	// IdleProbes counts steal attempts that found a victim's deque
	// empty — the "looking for work and finding none" signal.
	IdleProbes int64 `json:"idle_probes"`
}

// ReadStats returns the current counter values.
func ReadStats() Stats {
	return Stats{
		Runs:        statRuns.Load(),
		Rows:        statRows.Load(),
		Chunks:      statChunks.Load(),
		LocalClaims: statLocalClaims.Load(),
		Steals:      statSteals.Load(),
		IdleProbes:  statIdleProbes.Load(),
	}
}

// ResetStats zeroes the counters. Benchmarks call it between measured
// configurations; concurrent fan-outs will simply attribute their
// remaining claims to the new window.
func ResetStats() {
	statRuns.Store(0)
	statRows.Store(0)
	statChunks.Store(0)
	statLocalClaims.Store(0)
	statSteals.Store(0)
	statIdleProbes.Store(0)
}

// Sub returns s minus prev, the delta between two snapshots.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Runs:        s.Runs - prev.Runs,
		Rows:        s.Rows - prev.Rows,
		Chunks:      s.Chunks - prev.Chunks,
		LocalClaims: s.LocalClaims - prev.LocalClaims,
		Steals:      s.Steals - prev.Steals,
		IdleProbes:  s.IdleProbes - prev.IdleProbes,
	}
}
