package parwork

// Cost-aware work-stealing scheduler. The original engine claimed row
// indices from one shared atomic counter, which is perfectly fair for
// uniform rows but leaves workers idle behind a single monster row when
// the grid is uneven (an E2 adversary row over n=243 processes costs
// orders of magnitude more than a sampled sweep row). This scheduler
// fixes both ends of that imbalance:
//
//   - A pluggable CostHint lets the caller describe each row's known
//     shape (step budget, reference execution length, process count).
//     Rows are seeded largest-processing-time-first across per-worker
//     deques, the classic LPT makespan heuristic: every worker starts
//     its biggest rock immediately instead of discovering it last.
//   - Workers pop their own deque LIFO (largest seeded chunk first) and
//     steal FIFO from a victim's deque when they run dry, so a bad or
//     missing hint degrades into plain dynamic load balancing rather
//     than idle workers.
//   - Rows are claimed in chunks sized inversely to their hinted cost:
//     expensive rows travel alone (they can be stolen individually),
//     cheap sampled rows ride in batches so tiny rows do not pay one
//     synchronized claim each. Within a chunk, advancing to the next
//     row is a local increment.
//
// None of this changes the merge contract: row i still writes slot i,
// so the output is byte-identical to the serial loop's at every worker
// count, with stealing on or off, under any hint. Scheduling order is
// free precisely because the jobs are pure functions of their index.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// CostHint estimates the relative cost of row i. Only the ordering and
// rough magnitude matter: the scheduler uses hints to seed big rows
// first and to size claim chunks, never to decide *whether* a row runs.
// Values <= 0 are treated as 1. A nil CostHint means uniform rows, which
// still get chunked claiming and stealing — just no LPT seeding order.
type CostHint func(i int) int64

// stealing is the process-wide work-stealing switch, on by default. It
// exists for the determinism gates, which must prove byte-identity both
// with stealing (workers share the ragged tail) and without (each worker
// drains only its seeded deque) — and for measuring what stealing buys.
var stealingOff atomic.Bool

// SetStealing enables or disables work stealing process-wide. With
// stealing off, workers finish only the chunks seeded to their own
// deque; every row still runs exactly once, so results are unchanged —
// only the load balance (and therefore wall clock) differs.
func SetStealing(enabled bool) { stealingOff.Store(!enabled) }

// StealingEnabled reports the current switch.
func StealingEnabled() bool { return !stealingOff.Load() }

// chunkFactor is the target number of chunks per worker. More chunks
// mean finer stealing granularity; fewer mean less claim overhead. At 8,
// a uniform grid still gives every thief several chunks to take, and a
// claim happens once per ~1/(8w) of the total work.
const chunkFactor = 8

// chunk is a half-open range [lo, hi) of positions in the scheduler's
// seeded order (positions, not row indices: order[pos] is the row).
type chunk struct{ lo, hi int32 }

// deque is one worker's bounded chunk queue. It is seeded once before
// the workers start and only ever shrinks afterwards, so its capacity is
// exactly the seeded chunk count. The owner pops newest-first (LIFO:
// popTail), thieves pop oldest-first (FIFO: popHead); chunks are pushed
// in ascending cost order, so the owner works its largest chunks first
// while thieves take from the cheap end. A mutex per deque is the right
// tool here: one claim governs a whole chunk of simulator executions
// (milliseconds each), so claim-path contention is noise.
type deque struct {
	mu         sync.Mutex
	buf        []chunk
	head, tail int // live span is buf[head:tail]
}

// push seeds one chunk. Only called before the workers start.
func (d *deque) push(c chunk) {
	d.buf = append(d.buf, c)
	d.tail++
}

// popTail removes and returns the newest chunk (owner side).
func (d *deque) popTail() (chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == d.tail {
		return chunk{}, false
	}
	d.tail--
	return d.buf[d.tail], true
}

// popHead removes and returns the oldest chunk (thief side).
func (d *deque) popHead() (chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == d.tail {
		return chunk{}, false
	}
	c := d.buf[d.head]
	d.head++
	return c, true
}

// scheduler hands out the row indices [0, n) to a fixed set of workers.
// With one worker it is a plain sequential counter (no plan, no deques,
// no stats beyond the row count); with more it is the seeded
// work-stealing structure described at the top of this file.
type scheduler struct {
	n      int
	order  []int32 // row indices in seeded (LPT) order; nil when serial
	deques []deque
	serial atomic.Int64
}

// newScheduler builds the schedule for n rows across workers workers.
// cost may be nil (uniform rows).
func newScheduler(n, workers int, cost CostHint) *scheduler {
	statRuns.Add(1)
	statRows.Add(int64(n))
	s := &scheduler{n: n}
	if workers <= 1 || n <= 1 {
		return s
	}

	// Clamped per-row costs: hints only order and size chunks, so wild
	// values are folded into a safe range rather than trusted blindly.
	costs := make([]int64, n)
	var total int64
	for i := range costs {
		c := int64(1)
		if cost != nil {
			if h := cost(i); h > 1 {
				c = h
				if c > 1<<40 {
					c = 1 << 40
				}
			}
		}
		costs[i] = c
		total += c
	}

	// LPT order: descending cost, ties by ascending index (stable, so a
	// nil hint leaves the natural order).
	s.order = make([]int32, n)
	for i := range s.order {
		s.order[i] = int32(i)
	}
	sort.SliceStable(s.order, func(a, b int) bool {
		return costs[s.order[a]] > costs[s.order[b]]
	})

	// Adaptive chunking over the sorted order: accumulate consecutive
	// positions until a chunk carries ~1/(chunkFactor*workers) of the
	// total cost or maxRows rows. Because the order is descending, any
	// row at or above the target immediately closes its own singleton
	// chunk — expensive rows split, cheap rows amortize.
	targetChunks := chunkFactor * workers
	target := total / int64(targetChunks)
	if target < 1 {
		target = 1
	}
	maxRows := n / targetChunks
	if maxRows < 1 {
		maxRows = 1
	}
	var chunks []chunk
	for p := 0; p < n; {
		lo := p
		var acc int64
		for p < n {
			acc += costs[s.order[p]]
			p++
			if acc >= target || p-lo >= maxRows {
				break
			}
		}
		chunks = append(chunks, chunk{int32(lo), int32(p)})
	}
	statChunks.Add(int64(len(chunks)))

	// Greedy LPT assignment of chunks to workers: chunks arrive in
	// (roughly) descending cost order and each goes to the least-loaded
	// worker. Each worker's list is therefore descending; the deque is
	// seeded in reverse so the owner's LIFO pops see largest-first.
	chunkCost := func(c chunk) int64 {
		var sum int64
		for p := c.lo; p < c.hi; p++ {
			sum += costs[s.order[p]]
		}
		return sum
	}
	load := make([]int64, workers)
	assigned := make([][]chunk, workers)
	for _, c := range chunks {
		k := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[k] {
				k = w
			}
		}
		assigned[k] = append(assigned[k], c)
		load[k] += chunkCost(c)
	}
	s.deques = make([]deque, workers)
	for k, list := range assigned {
		s.deques[k].buf = make([]chunk, 0, len(list))
		for i := len(list) - 1; i >= 0; i-- {
			s.deques[k].push(list[i])
		}
	}
	return s
}

// claimer returns worker k's claim function. Each call yields the next
// row index to run, false when the worker should drain: its own deque is
// empty and (with stealing on) so is everyone else's. Safe only for use
// by a single goroutine per k.
func (s *scheduler) claimer(k int) func() (int, bool) {
	if s.order == nil {
		return func() (int, bool) {
			i := int(s.serial.Add(1)) - 1
			return i, i < s.n
		}
	}
	var cur chunk
	return func() (int, bool) {
		for {
			if cur.lo < cur.hi {
				i := int(s.order[cur.lo])
				cur.lo++
				return i, true
			}
			if c, ok := s.deques[k].popTail(); ok {
				cur = c
				statLocalClaims.Add(1)
				continue
			}
			if stealingOff.Load() {
				return 0, false
			}
			stolen := false
			for off := 1; off < len(s.deques); off++ {
				v := (k + off) % len(s.deques)
				if c, ok := s.deques[v].popHead(); ok {
					cur = c
					statSteals.Add(1)
					stolen = true
					break
				}
				statIdleProbes.Add(1)
			}
			if !stolen {
				// Deques never refill, so a fully empty scan is final.
				return 0, false
			}
		}
	}
}
