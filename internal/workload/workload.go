// Package workload defines the read/write mixes and passage plans the
// experiments and native benchmarks drive locks with. Mixes are the
// motivating scenarios from the paper's introduction: reader-writer locks
// exist because read-mostly sharing is the common case, so experiments
// sweep from read-heavy to write-heavy to expose each algorithm's corners.
package workload

import (
	"fmt"
	"math/rand"
)

// Mix is a target fraction of read passages in the workload.
type Mix struct {
	// Name labels the mix in tables ("read-heavy").
	Name string
	// ReadFraction is the fraction of all passages that are reads, in
	// (0, 1].
	ReadFraction float64
}

// Predefined mixes, read-heaviest first.
var (
	// ReadHeavy is 99% reads: the metrics/config-cache scenario.
	ReadHeavy = Mix{Name: "read-heavy", ReadFraction: 0.99}
	// ReadMostly is 90% reads: a typical cache in front of a store.
	ReadMostly = Mix{Name: "read-mostly", ReadFraction: 0.90}
	// Balanced is 50% reads.
	Balanced = Mix{Name: "balanced", ReadFraction: 0.50}
	// WriteHeavy is 10% reads: a write-back queue with occasional
	// consistency probes.
	WriteHeavy = Mix{Name: "write-heavy", ReadFraction: 0.10}
)

// Mixes lists the predefined mixes, read-heaviest first.
var Mixes = []Mix{ReadHeavy, ReadMostly, Balanced, WriteHeavy}

// Plan converts a total passage budget into per-process passage counts for
// n readers and m writers such that the realized read fraction approximates
// the mix. Every live process performs at least one passage.
func Plan(n, m, total int, mix Mix) (readerPassages, writerPassages int) {
	if n <= 0 && m <= 0 {
		return 0, 0
	}
	reads := int(float64(total) * mix.ReadFraction)
	writes := total - reads
	if n > 0 {
		readerPassages = max(reads/n, 1)
	}
	if m > 0 {
		writerPassages = max(writes/m, 1)
	}
	return readerPassages, writerPassages
}

// Stream is a deterministic, seeded source of read/write decisions for
// benchmark goroutines that interleave both roles.
type Stream struct {
	rng *rand.Rand
	mix Mix
}

// NewStream returns a stream for mix with the given seed.
func NewStream(mix Mix, seed int64) *Stream {
	return &Stream{rng: rand.New(rand.NewSource(seed)), mix: mix}
}

// NextIsRead reports whether the next passage should be a read passage.
func (s *Stream) NextIsRead() bool {
	return s.rng.Float64() < s.mix.ReadFraction
}

// String renders the mix for tables.
func (m Mix) String() string {
	return fmt.Sprintf("%s(%.0f%%)", m.Name, m.ReadFraction*100)
}
