package workload

import (
	"math"
	"strings"
	"testing"
)

func TestPlanApproximatesMix(t *testing.T) {
	cases := []struct {
		n, m, total int
		mix         Mix
	}{
		{16, 1, 1000, ReadHeavy},
		{16, 2, 1000, ReadMostly},
		{8, 4, 800, Balanced},
		{4, 8, 800, WriteHeavy},
	}
	for _, c := range cases {
		rp, wp := Plan(c.n, c.m, c.total, c.mix)
		if rp < 1 || wp < 1 {
			t.Errorf("%s: plan gave rp=%d wp=%d", c.mix.Name, rp, wp)
		}
		reads := float64(rp * c.n)
		writes := float64(wp * c.m)
		got := reads / (reads + writes)
		if math.Abs(got-c.mix.ReadFraction) > 0.15 {
			t.Errorf("%s n=%d m=%d: realized read fraction %.2f, want ~%.2f",
				c.mix.Name, c.n, c.m, got, c.mix.ReadFraction)
		}
	}
}

func TestPlanDegenerate(t *testing.T) {
	rp, wp := Plan(0, 0, 100, Balanced)
	if rp != 0 || wp != 0 {
		t.Errorf("empty population plan = (%d,%d)", rp, wp)
	}
	rp, wp = Plan(4, 0, 100, Balanced)
	if rp < 1 || wp != 0 {
		t.Errorf("readers-only plan = (%d,%d)", rp, wp)
	}
	rp, wp = Plan(0, 4, 100, Balanced)
	if rp != 0 || wp < 1 {
		t.Errorf("writers-only plan = (%d,%d)", rp, wp)
	}
}

func TestStreamDeterministicAndCalibrated(t *testing.T) {
	for _, mix := range Mixes {
		a := NewStream(mix, 42)
		b := NewStream(mix, 42)
		reads := 0
		const total = 10000
		for i := 0; i < total; i++ {
			av, bv := a.NextIsRead(), b.NextIsRead()
			if av != bv {
				t.Fatalf("%s: streams with equal seeds diverged at %d", mix.Name, i)
			}
			if av {
				reads++
			}
		}
		got := float64(reads) / total
		if math.Abs(got-mix.ReadFraction) > 0.02 {
			t.Errorf("%s: observed read fraction %.3f, want ~%.2f", mix.Name, got, mix.ReadFraction)
		}
	}
}

func TestMixString(t *testing.T) {
	s := ReadHeavy.String()
	if !strings.Contains(s, "read-heavy") || !strings.Contains(s, "99") {
		t.Errorf("String = %q", s)
	}
}
